// Replica server: a dispatch stage plus worker shards, owning the
// replica's state as a key-hash partition.
//
// The state per key is a (version, value) pair — a Section-3 DM — plus one
// store-wide (generation, configuration) stamp for Section-4
// reconfiguration, held together as storage::Image fragments, one per
// shard. Keys are independent logical items (their per-item version orders
// are what Lemmas 7/8 constrain), so partitioning them across worker
// threads changes no protocol-visible behavior: each key's requests are
// still handled in arrival order by the one shard that owns it.
//
// With shards == 1 there is no dispatch stage: a single worker thread
// drains the bus mailbox directly (the pre-sharding architecture, plus the
// batched PopAll drain). With shards > 1 a dispatch thread drains the bus
// mailbox and routes: single-key messages to ShardForKey(key), batches
// split per shard (a client may thus receive several kBatch*Resp for one
// request — one per shard touched; batch responses are folded per entry,
// so this is invisible to the protocol), kConfigWriteReq broadcast to all
// shards and acked once after a barrier confirms every shard applied and
// logged it (the stamp is store-wide state).
//
// Crash semantics stay fail-stop at replica granularity: Bus::Crash marks
// the node down, drains its bus mailbox, then (via the crash hook) drains
// every shard sub-mailbox and aborts any config barrier — all shards of a
// crashed replica die atomically; Bus::Send's up-check guarantees no shard
// answers afterward. CrashAndWipe() additionally stops the threads and
// discards every shard's image; Restart() rebuilds each shard from its own
// backend (under durability: its own WAL segment + snapshot) and
// relaunches the threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/bus.hpp"
#include "storage/backend.hpp"

namespace qcnt::runtime {

/// One version-accepted write, in application order — recorded only when
/// the server was built with record_history (test observability: the
/// per-item subsequences are exactly the version-number sequences Lemma
/// 7/8 constrain, so equivalence suites compare them across runtimes).
struct AppliedWrite {
  std::string key;
  std::uint64_t version = 0;
  std::int64_t value = 0;
};

/// Per-shard execution counters (volatile, unlike StorageStats). `ops`
/// counts operations applied (single requests and batch entries alike);
/// `queue_peak` is the high-water mark of messages moved by one mailbox
/// drain — together they show how evenly the key hash spreads load.
struct ShardCounters {
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t queue_peak = 0;

  ShardCounters& operator+=(const ShardCounters& o) {
    ops += o.ops;
    batches += o.batches;
    fsyncs += o.fsyncs;
    queue_peak = queue_peak > o.queue_peak ? queue_peak : o.queue_peak;
    return *this;
  }
};

/// Replica-side batching counters (volatile, unlike StorageStats).
struct BatchStats {
  std::uint64_t batches_applied = 0;  // kBatch* messages handled
  std::uint64_t batched_ops = 0;      // entries across those messages
  std::uint64_t max_batch = 0;        // largest single batch seen
  /// One slot per shard; merging stats from replicas with different shard
  /// counts aligns slots by index (shard balance only means something
  /// within one replica, but aggregate totals still add up).
  std::vector<ShardCounters> per_shard;

  BatchStats& operator+=(const BatchStats& o) {
    batches_applied += o.batches_applied;
    batched_ops += o.batched_ops;
    max_batch = max_batch > o.max_batch ? max_batch : o.max_batch;
    if (per_shard.size() < o.per_shard.size()) {
      per_shard.resize(o.per_shard.size());
    }
    for (std::size_t i = 0; i < o.per_shard.size(); ++i) {
      per_shard[i] += o.per_shard[i];
    }
    return *this;
  }
};

/// Point-in-time copy of a replica's volatile state. Each shard snapshots
/// itself on its own thread between operations (never mid-batch); the
/// shard images are key-disjoint, so the merged image is a consistent
/// per-key snapshot. History is concatenated shard-by-shard: per-key order
/// is exact (a key lives in one shard); cross-key interleaving is not
/// meaningful under sharded execution.
struct ReplicaSnapshot {
  storage::Image image;
  std::vector<AppliedWrite> history;  // empty unless record_history
  BatchStats stats;                   // includes per-shard counters
};

class ReplicaServer {
 public:
  /// Builds the backend for one shard (called once per shard index).
  using BackendFactory =
      std::function<std::unique_ptr<storage::Backend>(std::size_t)>;

  /// Single shard, in-memory backend; starts the server thread. The
  /// transport may be the in-process Bus or a net::TcpTransport hosting
  /// this node — the server only uses the Transport surface.
  ReplicaServer(Transport& transport, NodeId id);
  /// `shards` worker shards, each recovering from its own backend.
  ReplicaServer(Transport& transport, NodeId id, std::size_t shards,
                const BackendFactory& make_backend,
                bool record_history = false);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  NodeId Id() const { return id_; }
  std::size_t ShardCount() const { return shards_.size(); }

  /// Ask the loops to exit and join all threads.
  void Shutdown();

  /// Fail-stop: stop every thread and wipe all volatile state. The caller
  /// is expected to have partitioned the node (Bus::Crash) first so the
  /// ack of an in-flight request cannot escape.
  void CrashAndWipe();

  /// Relaunch after CrashAndWipe (or Shutdown): recover each shard's image
  /// from its backend and restart the threads. No-op if already running.
  void Restart();

  bool Running() const { return thread_.joinable(); }

  /// Consistent merged copy of the replica's state (see ReplicaSnapshot).
  /// Must only be called while the server is running.
  ReplicaSnapshot Peek();

  storage::StorageStats StorageStats() const;
  runtime::BatchStats BatchStats() const;

 private:
  struct Shard {
    Mailbox inbox;  // unused in single-shard mode (no dispatch stage)
    storage::Image image;
    std::vector<AppliedWrite> history;
    std::unique_ptr<storage::Backend> backend;
    std::thread thread;
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> queue_peak{0};
  };

  bool Multi() const { return shards_.size() > 1; }

  void Start();
  void SingleLoop();
  void DispatchLoop();
  void ShardLoop(std::size_t idx);
  void Route(Envelope e);
  void SplitBatch(Envelope e);
  void BroadcastConfigAndAck(const Envelope& e);
  void StopShards();
  void OnBusCrash();

  void HandleOnShard(std::size_t idx, Envelope& e);
  void HandleBatchRead(Shard& sh, const RtMessage& m, RtMessage& reply);
  void HandleBatchWrite(Shard& sh, const RtMessage& m, RtMessage& reply);
  /// Donor side of streaming catchup: serve one bounded chunk of this
  /// shard's image — the smallest `m.value` keys strictly greater than
  /// the cursor `m.key` — ascending, with the shard count and the
  /// replica's stamp on the reply (runs on the owning shard thread, so
  /// chunks interleave with live writes without any extra locking).
  void ServeCatchup(std::size_t idx, Envelope& e);
  /// Joiner side: start (or resume) pulling the donor's image shard by
  /// shard. Runs on the dispatch thread (multi) or the sole worker.
  void HandleJoinReq(const Envelope& e);
  /// Joiner side: one arrived chunk — verify the shard layout, hand the
  /// entries to the owning worker, advance the cursor, request the next
  /// chunk or report kCatchupDone to the coordinator.
  void HandleJoinChunk(Envelope& e);
  void SendCatchupReq();
  /// Merge pulled entries under the same newer-version-wins order as live
  /// writes (so a chunk can never regress a version a concurrent install
  /// already placed), write-ahead logging the accepted ones.
  void ApplyCatchupEntries(Shard& sh, const std::vector<BatchEntry>& entries);
  /// Newer-version-wins merge of one write into the shard image; true when
  /// the write was accepted (and therefore must reach the backend).
  bool ApplyToImage(Shard& sh, const std::string& key, std::uint64_t version,
                    std::int64_t value);
  void ServePeek(std::size_t idx, std::uint64_t epoch);
  void CountBatch(Shard& sh, std::size_t entries);
  static void TrackPeak(std::atomic<std::uint64_t>& peak, std::uint64_t v);
  std::vector<ShardCounters> CollectShardCounters() const;

  Transport* transport_;
  NodeId id_;
  bool record_history_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread thread_;  // dispatch thread (multi) or the sole worker

  // Config barrier (multi-shard): dispatch broadcasts a kConfigWriteReq to
  // every shard (its `value` carries the epoch) and acks the client only
  // once every shard has applied + logged it. The epoch guards against a
  // shard's late decrement from a barrier that a crash aborted.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::uint64_t barrier_epoch_ = 0;
  std::size_t barrier_pending_ = 0;

  // Peek handshake: the requester pushes one kImagePeek (epoch in
  // `generation`); dispatch fans it to every shard; each shard fills its
  // slot once per epoch. A crash can clear an in-flight peek from the
  // shard inboxes, so the requester retries the same epoch on a timeout —
  // the filled flags make retries idempotent.
  std::mutex peek_call_mu_;  // serializes concurrent Peek() callers
  std::mutex peek_mu_;
  std::condition_variable peek_cv_;
  std::uint64_t peek_epoch_ = 0;
  std::size_t peek_served_ = 0;
  std::vector<ReplicaSnapshot> peek_slots_;
  std::vector<char> peek_filled_;

  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> batched_ops_{0};
  std::atomic<std::uint64_t> max_batch_{0};

  /// Joiner-side pull progress. Touched only by the dispatch thread
  /// (multi) or the sole worker (single) — the same thread that routes
  /// kJoinReq and kCatchupChunk — so it needs no lock. A fresh kJoinReq
  /// with the same expected shard layout *resumes* from (shard, cursor):
  /// that is what makes a donor crash mid-stream recoverable, from the
  /// same donor or a different one.
  struct JoinState {
    bool active = false;
    std::uint64_t op = 0;
    NodeId donor = 0;
    NodeId coordinator = 0;
    std::uint64_t expected_shards = 0;
    std::uint32_t shard = 0;     // shard currently being pulled
    std::string cursor;          // last key received (exclusive)
    std::uint64_t entries = 0;   // total entries streamed so far
    /// Monotone per-request id (rides in kCatchupReq::op, echoed by the
    /// donor). Only the chunk answering the *latest outstanding* request
    /// advances the cursor — a duplicated or reordered chunk (fault
    /// injection, donor failover races) is dropped instead of double-
    /// advancing the shard counter or resurrecting a stale cursor.
    /// Survives a resume (it must stay monotone against in-flight stale
    /// chunks); cleared only by CrashAndWipe, which also drains inboxes.
    std::uint64_t pull_seq = 0;
  };
  JoinState join_;
};

/// kCatchupDone error codes (RtMessage::value).
inline constexpr std::int64_t kJoinOk = 0;
/// Donor's shard count differs from the layout the coordinator promised:
/// a shard-by-shard stream would land keys on the wrong worker (and, under
/// durability, the wrong WAL segment), so the join is refused outright.
inline constexpr std::int64_t kJoinErrShardMismatch = 1;

}  // namespace qcnt::runtime
