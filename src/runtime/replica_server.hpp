// Replica server: one thread per replica, owning the replica's state.
//
// The state per key is a (version, value) pair — a Section-3 DM — plus one
// store-wide (generation, configuration) stamp for Section-4
// reconfiguration, held together as a storage::Image. The server loop pops
// a request, applies it to the image, notifies its storage::Backend (the
// write-ahead step under a durable backend), and replies; a kShutdown
// message ends the loop.
//
// Batched requests (kBatchReadReq / kBatchWriteReq) apply every entry with
// a single mailbox wakeup, and all version-accepted writes of a batch go
// through storage::Backend::ApplyWriteBatch — one log append, one
// group-commit fsync decision — before the single ack covering them all.
//
// Crash semantics: CrashAndWipe() stops the loop and discards the image —
// a real fail-stop, unlike a bus partition. Restart() rebuilds the image
// through the backend's recovery path and relaunches the loop. Under the
// in-memory backend recovery returns an empty image, so stores that need
// the seed's lossless-crash behavior keep using the bus partition alone.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/bus.hpp"
#include "storage/backend.hpp"

namespace qcnt::runtime {

/// One version-accepted write, in application order — recorded only when
/// the server was built with record_history (test observability: the
/// per-item subsequences are exactly the version-number sequences Lemma
/// 7/8 constrain, so equivalence suites compare them across runtimes).
struct AppliedWrite {
  std::string key;
  std::uint64_t version = 0;
  std::int64_t value = 0;
};

/// Point-in-time copy of a replica's volatile state, taken on the server
/// thread itself (so it is a consistent snapshot between operations, never
/// mid-batch).
struct ReplicaSnapshot {
  storage::Image image;
  std::vector<AppliedWrite> history;  // empty unless record_history
};

/// Replica-side batching counters (volatile, unlike StorageStats).
struct BatchStats {
  std::uint64_t batches_applied = 0;  // kBatch* messages handled
  std::uint64_t batched_ops = 0;      // entries across those messages
  std::uint64_t max_batch = 0;        // largest single batch seen

  BatchStats& operator+=(const BatchStats& o) {
    batches_applied += o.batches_applied;
    batched_ops += o.batched_ops;
    max_batch = max_batch > o.max_batch ? max_batch : o.max_batch;
    return *this;
  }
};

class ReplicaServer {
 public:
  /// Starts the server thread immediately (in-memory backend).
  ReplicaServer(Bus& bus, NodeId id);
  /// Starts the server thread immediately, recovering state from `backend`.
  ReplicaServer(Bus& bus, NodeId id,
                std::unique_ptr<storage::Backend> backend,
                bool record_history = false);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  NodeId Id() const { return id_; }

  /// Ask the loop to exit and join the thread.
  void Shutdown();

  /// Fail-stop: stop the loop and wipe all volatile state. The caller is
  /// expected to have partitioned the node (Bus::Crash) first so the ack
  /// of an in-flight request cannot escape.
  void CrashAndWipe();

  /// Relaunch after CrashAndWipe (or Shutdown): recover the image from
  /// the backend and restart the loop. No-op if already running.
  void Restart();

  bool Running() const { return thread_.joinable(); }

  /// Consistent copy of the replica's state, taken by the server loop
  /// between operations. Must only be called while the server is running.
  ReplicaSnapshot Peek();

  storage::StorageStats StorageStats() const { return backend_->Stats(); }
  runtime::BatchStats BatchStats() const;

 private:
  void Start();
  void Loop();
  void Handle(const Envelope& e);
  void HandleBatchRead(const RtMessage& m, RtMessage& reply);
  void HandleBatchWrite(const RtMessage& m, RtMessage& reply);
  /// Newer-version-wins merge of one write into the image; true when the
  /// write was accepted (and therefore must reach the backend).
  bool ApplyToImage(const std::string& key, std::uint64_t version,
                    std::int64_t value);
  void CountBatch(std::size_t entries);

  Bus* bus_;
  NodeId id_;
  std::unique_ptr<storage::Backend> backend_;
  storage::Image state_;
  bool record_history_ = false;
  std::vector<AppliedWrite> history_;
  std::thread thread_;

  // Peek handshake: requesters push a kImagePeek message and wait for the
  // loop to copy state_ into peek_snapshot_ under peek_mu_.
  std::mutex peek_mu_;
  std::condition_variable peek_cv_;
  std::uint64_t peeks_requested_ = 0;
  std::uint64_t peeks_served_ = 0;
  ReplicaSnapshot peek_snapshot_;

  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> batched_ops_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

}  // namespace qcnt::runtime
