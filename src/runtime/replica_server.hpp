// Replica server: one thread per replica, owning the replica's state.
//
// The state per key is a (version, value) pair — a Section-3 DM — plus one
// store-wide (generation, configuration) stamp for Section-4
// reconfiguration, held together as a storage::Image. The server loop pops
// a request, applies it to the image, notifies its storage::Backend (the
// write-ahead step under a durable backend), and replies; a kShutdown
// message ends the loop.
//
// Crash semantics: CrashAndWipe() stops the loop and discards the image —
// a real fail-stop, unlike a bus partition. Restart() rebuilds the image
// through the backend's recovery path and relaunches the loop. Under the
// in-memory backend recovery returns an empty image, so stores that need
// the seed's lossless-crash behavior keep using the bus partition alone.
#pragma once

#include <memory>
#include <thread>

#include "runtime/bus.hpp"
#include "storage/backend.hpp"

namespace qcnt::runtime {

class ReplicaServer {
 public:
  /// Starts the server thread immediately (in-memory backend).
  ReplicaServer(Bus& bus, NodeId id);
  /// Starts the server thread immediately, recovering state from `backend`.
  ReplicaServer(Bus& bus, NodeId id,
                std::unique_ptr<storage::Backend> backend);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  NodeId Id() const { return id_; }

  /// Ask the loop to exit and join the thread.
  void Shutdown();

  /// Fail-stop: stop the loop and wipe all volatile state. The caller is
  /// expected to have partitioned the node (Bus::Crash) first so the ack
  /// of an in-flight request cannot escape.
  void CrashAndWipe();

  /// Relaunch after CrashAndWipe (or Shutdown): recover the image from
  /// the backend and restart the loop. No-op if already running.
  void Restart();

  bool Running() const { return thread_.joinable(); }

  storage::StorageStats StorageStats() const { return backend_->Stats(); }

 private:
  void Start();
  void Loop();
  void Handle(const Envelope& e);

  Bus* bus_;
  NodeId id_;
  std::unique_ptr<storage::Backend> backend_;
  storage::Image state_;
  std::thread thread_;
};

}  // namespace qcnt::runtime
