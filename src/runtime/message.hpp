// Wire messages of the threaded runtime.
//
// The runtime is the deployable counterpart of the verified automaton
// layer: real threads, real mailboxes, the same quorum protocol. Messages
// are small value types; the key is carried as a string so the store is
// multi-item (each key is an independent logical data item with its own
// version number, exactly as items are independent in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "quorum/strategy_descriptor.hpp"

namespace qcnt::runtime {

using NodeId = std::uint32_t;

/// Self-describing configuration: the member node ids plus the strategy
/// descriptor whose system quorums over them (structural position i is
/// played by members[i]). Carried on the wire (codec v3) inside config
/// writes and echoed on fence NACKs, so a client in *another process* —
/// whose ConfigTable never saw the coordinator's Append — can install
/// the configuration a stamp names instead of aborting as unresolvable.
struct ConfigPayload {
  std::vector<NodeId> members;
  quorum::StrategyDescriptor descriptor;

  bool operator==(const ConfigPayload& o) const {
    return members == o.members && descriptor == o.descriptor;
  }
  bool operator!=(const ConfigPayload& o) const { return !(*this == o); }
};

/// One operation inside a multi-op (batched) message. In a batch read
/// request only (op, key) are meaningful; in a batch read response all
/// four fields are; in a batch write request (op, key, version, value)
/// carry the install; in a batch write ack only op is.
struct BatchEntry {
  std::uint64_t op = 0;
  std::string key;
  std::uint64_t version = 0;
  std::int64_t value = 0;
};

struct RtMessage {
  enum class Kind : std::uint8_t {
    kReadReq,
    kReadResp,
    kWriteReq,
    kWriteAck,
    kConfigWriteReq,
    kConfigWriteAck,
    kBatchReadReq,   // batch: one read-phase probe per entry
    kBatchReadResp,  // batch: per-entry (version, value); stamp top-level
    kBatchWriteReq,  // batch: one write install per entry
    kBatchWriteAck,  // batch: acks every entry's op id
    kShutdown,       // internal: stop a server loop
    kImagePeek,      // internal: copy the replica's state for observers
                     // (`generation` carries the peek epoch on sharded
                     // replicas so a retried peek is served exactly once)
    // --- Membership change / streaming catchup (DESIGN.md §11). The four
    // kinds reuse the existing fields; no new struct members.
    kCatchupReq,     // puller -> donor: `key` = resume cursor (exclusive;
                     // "" = shard start), `value` = max entries per chunk,
                     // `version` = donor shard index to pull from,
                     // `op` = pull op id
    kCatchupChunk,   // donor -> puller: `batch` = (key, version, value)
                     // entries in ascending key order, `key` = next cursor,
                     // `value` = 1 if more remain else 0, `generation` /
                     // `config_id` = donor's current stamp, `version` =
                     // donor shard count; `op` echoes the request. A
                     // `version` of 0 with empty batch signals a typed
                     // refusal (donor down or manifest mismatch).
    kCatchupDone,    // joiner -> coordinator: `value` = 0 ok, nonzero =
                     // typed error code; `version` = entries streamed
    kJoinReq,        // coordinator -> joiner: start pulling; `value` =
                     // donor node id, `version` = expected shard count,
                     // `op` = join op id
    kCrashDrain,     // internal: fail-stop marker. Crash(node) enqueues it
                     // at the tail of the node's mailbox; everything ahead
                     // of it is applied, everything behind it is refused,
                     // so the crash cut is a deterministic FIFO position
                     // instead of a timing race. Never encoded on the wire
                     // (codec kMaxKind = kJoinReq rejects it).
  };
  // Sharded replicas (StoreOptions::shards_per_replica > 1) route these
  // messages internally by key hash. A kBatch* request may therefore be
  // answered with *several* responses from the same replica — one per
  // shard the batch touched. Clients already tolerate this: batch
  // responses are folded per entry under per-op replica bitmasks, and each
  // op's key lives in exactly one shard, so every replica still
  // contributes exactly one response entry per op. A kConfigWriteReq is
  // broadcast to every shard (the stamp is store-wide state) and acked
  // once, after all shards have applied it; when forwarded shard-ward its
  // `value` field carries the dispatch barrier epoch.
  Kind kind = Kind::kReadReq;
  std::uint64_t op = 0;
  std::string key;
  std::uint64_t version = 0;
  std::int64_t value = 0;
  std::uint64_t generation = 0;
  std::uint32_t config_id = 0;
  /// Entries of a kBatch* message; empty for single-op messages. A batch
  /// is applied by the replica with one mailbox wakeup and (for writes)
  /// one group-commit append through the durable backend.
  std::vector<BatchEntry> batch;
  /// The configuration `config_id` names, when the sender can describe
  /// it (see ConfigPayload). Set on kConfigWriteReq by a reconfiguring
  /// client; echoed by replicas on kConfigWriteAck and on fence NACKs
  /// so the fenced client can learn the config it is being fenced to.
  /// Absent on everything else.
  std::optional<ConfigPayload> config;
};

struct Envelope {
  NodeId from = 0;
  RtMessage msg;
};

}  // namespace qcnt::runtime
