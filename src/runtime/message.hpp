// Wire messages of the threaded runtime.
//
// The runtime is the deployable counterpart of the verified automaton
// layer: real threads, real mailboxes, the same quorum protocol. Messages
// are small value types; the key is carried as a string so the store is
// multi-item (each key is an independent logical data item with its own
// version number, exactly as items are independent in the paper).
#pragma once

#include <cstdint>
#include <string>

namespace qcnt::runtime {

using NodeId = std::uint32_t;

struct RtMessage {
  enum class Kind : std::uint8_t {
    kReadReq,
    kReadResp,
    kWriteReq,
    kWriteAck,
    kConfigWriteReq,
    kConfigWriteAck,
    kShutdown,  // internal: stop a server loop
  };
  Kind kind = Kind::kReadReq;
  std::uint64_t op = 0;
  std::string key;
  std::uint64_t version = 0;
  std::int64_t value = 0;
  std::uint64_t generation = 0;
  std::uint32_t config_id = 0;
};

struct Envelope {
  NodeId from = 0;
  RtMessage msg;
};

}  // namespace qcnt::runtime
