// ReplicatedStore: the library's deployable public API.
//
// A ReplicatedStore owns a bus, n replica server threads, and hands out
// blocking clients. Keys are independent logical data items; every
// operation runs Gifford's quorum protocol under the store's current
// configuration, tolerating replica crashes up to quorum availability and
// supporting online reconfiguration (Section 4) to restore write
// availability after failures.
//
//   qcnt::runtime::ReplicatedStore store(
//       qcnt::runtime::StoreOptions{.replicas = 5});
//   auto client = store.MakeClient();
//   client->Write("balance", 100);
//   auto r = client->Read("balance");   // r.value == 100
//   store.Crash(4);                      // still within quorum
//
// With StoreOptions::durability set, each replica keeps a write-ahead log
// and snapshots under `durability->directory/replica_<r>`; Crash() then
// wipes the replica's volatile state (true fail-stop) and Recover()
// rebuilds it from disk through storage::RecoveryManager — so quorum
// reads after recovery genuinely exercise Lemma 8 rather than reading a
// map that never died.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "net/tcp_transport.hpp"
#include "runtime/async_client.hpp"
#include "runtime/client.hpp"
#include "runtime/config_table.hpp"
#include "runtime/replica_server.hpp"

namespace qcnt::runtime {

/// TCP-backed deployment of a single-process store: every node (replicas
/// and clients) still lives in this process, but all cross-node traffic
/// rides loopback TCP through one net::TcpTransport — the full codec +
/// socket + event-loop path, measurable against the in-process Bus
/// (bench_transport, E18). Fault injection is incompatible with this mode
/// (see StoreOptions::faults); multi-machine deployments assemble
/// TcpTransport + ReplicaServer directly (examples/multi_process.cpp).
struct TcpStoreOptions {
  std::string host = "127.0.0.1";
  /// First listen port: node i (replicas then clients) listens on
  /// port_base + i. 0 = let the kernel pick ephemeral ports per node
  /// (self-contained; no collisions across concurrent test runs). The
  /// QCNT_TCP_PORT_BASE environment variable, when set and in range,
  /// overrides a zero port_base.
  std::uint16_t port_base = 0;
};

struct StoreOptions {
  std::size_t replicas = 3;
  /// Maximum number of concurrently live clients.
  std::size_t max_clients = 16;
  /// Table of installable configurations. When empty, defaults to
  /// { majority(replicas) } with entry 0 initial.
  std::vector<quorum::QuorumSystem> configs;
  /// Quorum strategy spec for the default configuration, in the
  /// ParseStrategy grammar: "majority", "rowa"/"read-dominant", "rawo",
  /// "primary", "grid:RxC", "tree:B,L", "hier:B,D",
  /// "weighted:v1,...:R:W". Empty = majority. The shape must cover
  /// exactly `replicas` nodes or construction throws
  /// quorum::StrategyConfigError (fail-fast, typed — never a deep
  /// assert). Mutually exclusive with a non-empty `configs`, which
  /// already names its systems. When this field is empty and `configs`
  /// is too, the QCNT_STRATEGY environment variable supplies the spec;
  /// per the env-override contract (common/env.hpp) a spec that does
  /// not parse or fit `replicas` falls back to majority instead of
  /// taking the process down.
  std::string strategy;
  std::uint32_t initial_config = 0;
  QuorumClient::Options client_options;
  AsyncQuorumClient::Options async_client_options;
  /// Worker shards per replica: each replica partitions its keyspace
  /// across this many threads (see replica_server.hpp). 0 = auto: the
  /// QCNT_SHARDS environment variable when set, else
  /// min(4, hardware_concurrency). Under durability each shard keeps its
  /// own directory (`shard_<s>/`) of WAL segments and checkpoints; the
  /// replica's MANIFEST pins the count, and reopening with a different
  /// count is rejected (key striping is not self-rebalancing).
  std::size_t shards_per_replica = 0;
  /// Worker threads multiplexing each replica's shards (see
  /// replica_server.hpp: shards pin the durable layout, workers set
  /// execution parallelism). 0 = auto: the QCNT_WORKERS environment
  /// variable when set, else min(shards, hardware_concurrency). Always
  /// clamped to [1, shards_per_replica].
  std::size_t workers_per_replica = 0;
  /// When set, replicas persist to `directory/replica_<r>` and crashes
  /// lose volatile state; when unset, replicas are purely in-memory and a
  /// crash is only a partition (the original semantics).
  std::optional<storage::DurabilityOptions> durability;
  /// Test observability: replicas record every version-accepted write in
  /// application order (see AppliedWrite); read back via ReplicaPeek.
  bool record_applied_history = false;
  /// When set, installed as the bus-wide default FaultPlan before any
  /// replica thread starts (see bus.hpp): every link becomes a lossy,
  /// duplicating, delaying, reordering channel, deterministically from
  /// FaultPlan::seed. The QCNT_FAULT_SEED environment variable, when set,
  /// overrides the seed — the hook a CI chaos matrix uses to vary runs
  /// without editing tests. Mutable at runtime via SetFaults below.
  /// Incompatible with `tcp`: fault injection is an in-process-Bus
  /// feature, and combining the two throws net::TransportConfigError at
  /// construction rather than silently ignoring the plan.
  std::optional<FaultPlan> faults;
  /// When set, the store's nodes communicate over loopback TCP instead
  /// of the in-process Bus (see TcpStoreOptions).
  std::optional<TcpStoreOptions> tcp;
};

class ReplicatedStore {
 public:
  explicit ReplicatedStore(StoreOptions options);
  ~ReplicatedStore();

  ReplicatedStore(const ReplicatedStore&) = delete;
  ReplicatedStore& operator=(const ReplicatedStore&) = delete;

  std::size_t ReplicaCount() const { return replicas_.size(); }
  const std::vector<quorum::QuorumSystem>& Configs() const {
    return options_.configs;
  }
  /// The shared runtime-appendable configuration registry (grows on
  /// membership change; every client holds the same table).
  const std::shared_ptr<ConfigTable>& ConfigTableRef() const {
    return table_;
  }
  bool Durable() const { return options_.durability.has_value(); }
  bool OverTcp() const { return tcp_ != nullptr; }
  /// "bus" or "tcp".
  const char* TransportName() const { return transport_->Name(); }
  /// Resolved shard count (after the 0 = auto default is applied).
  std::size_t ShardsPerReplica() const {
    return options_.shards_per_replica;
  }
  /// Resolved worker-pool size of one replica (workers multiplex shards;
  /// machine-dependent when workers_per_replica is 0 = auto).
  std::size_t ReplicaWorkerCount(std::size_t replica) const;

  /// Create a client (each client must be used from one thread at a time).
  std::unique_ptr<QuorumClient> MakeClient();

  /// Create an asynchronous pipelined/batched client (also one thread at a
  /// time; see async_client.hpp for the ordering envelope). Draws from the
  /// same max_clients budget as MakeClient.
  std::unique_ptr<AsyncQuorumClient> MakeAsyncClient();
  std::unique_ptr<AsyncQuorumClient> MakeAsyncClient(
      AsyncQuorumClient::Options options);

  /// Crash / recover a replica (by node id: founding replicas are nodes
  /// [0, replicas); replicas added at runtime keep the id AddReplica
  /// assigned them). Under a durable backend, Crash discards the
  /// replica's in-memory state and Recover replays snapshot + log before
  /// the replica rejoins quorums.
  void Crash(std::size_t replica);
  void Recover(std::size_t replica);
  bool IsUp(std::size_t replica) const;

  std::uint64_t MessagesSent() const { return transport_->MessagesSent(); }

  /// Socket-level counters; only meaningful on a TCP-backed store (zeros
  /// on the in-process Bus).
  net::TcpStats WireStats() const;

  // --- Fault injection (see bus.hpp) ---------------------------------------
  // Node ids: replicas are [0, replicas); clients are assigned
  // [replicas, replicas + max_clients) in MakeClient order — use these ids
  // to scope partitions and per-link plans.
  //
  // Every method below is an in-process-Bus feature: on a TCP-backed
  // store it throws net::TransportConfigError (the real network is the
  // fault injector there).

  /// Install `plan` as the default for every link (replaces any plan from
  /// StoreOptions::faults).
  void SetFaults(const FaultPlan& plan);
  /// Override the plan for one directed link.
  void SetLinkFaults(NodeId from, NodeId to, const FaultPlan& plan);
  /// Remove the default plan and all per-link overrides.
  void ClearFaults();
  /// Partition node sets `a` and `b` from each other (see Bus::Partition).
  void Partition(const std::vector<NodeId>& a, const std::vector<NodeId>& b,
                 bool symmetric = true);
  /// Heal every installed partition.
  void Heal();
  /// Deliver everything the fault layer still holds (test drains).
  void FlushFaults();
  FaultStats InjectedFaults() const;

  /// Storage counters for one replica / summed over all replicas.
  storage::StorageStats ReplicaStorageStats(std::size_t replica) const;
  storage::StorageStats TotalStorageStats() const;

  /// Fsync passes made by the replica's group-commit coordinator — the
  /// number of cross-shard fsync *decisions* (each pass syncs every dirty
  /// shard segment once). 0 when the replica is not group-commit durable.
  std::uint64_t ReplicaCommitPasses(std::size_t replica) const;

  /// Replica-side batching counters, alongside the storage counters.
  BatchStats ReplicaBatchStats(std::size_t replica) const;
  BatchStats TotalBatchStats() const;

  /// Consistent snapshot of a running replica's state (image + applied
  /// history when record_applied_history is set), taken between ops on the
  /// server thread itself.
  ReplicaSnapshot ReplicaPeek(std::size_t replica) const;

  // --- Membership plumbing -------------------------------------------------
  // The three-phase protocol itself (bulk catchup, stamp, seal) lives a
  // layer above, in reconfig/catchup.hpp: call reconfig::AddReplica /
  // reconfig::RemoveReplica with this store. These hooks are what the
  // coordinator drives; they are safe to call concurrently with live
  // client traffic.

  /// Current replica member node ids (founding ids plus joins, minus
  /// removals), and the configuration id currently in force.
  std::vector<NodeId> Members() const;
  std::uint32_t CurrentConfigId() const;
  /// The dedicated coordinator client slot (one id, reused across
  /// membership operations; never counted against max_clients).
  NodeId CoordinatorId() const {
    return static_cast<NodeId>(options_.replicas + options_.max_clients);
  }
  Transport& TransportRef() { return *transport_; }
  /// Serializes membership operations (at most one join/leave at a time).
  std::unique_lock<std::mutex> LockMembership() {
    return std::unique_lock<std::mutex>(membership_mu_);
  }
  /// Allocate the next replica node id, grow the transport by that node,
  /// and start its ReplicaServer (durable stores get a fresh
  /// `replica_<id>` directory). The new replica serves traffic but is in
  /// no configuration until a reconfiguration installs one including it.
  /// Checks that the id budget (the 64-id quorum bitmask domain) is not
  /// exhausted. Caller must hold LockMembership().
  NodeId SpawnReplica();
  /// Install the outcome of a successful membership operation: the member
  /// list and configuration id new clients start from. Caller must hold
  /// LockMembership().
  void CommitMembership(std::vector<NodeId> members, std::uint32_t config_id);
  /// Stop and drop a replica server (a decommissioned leaver, or a joiner
  /// whose join failed). The node id stays burned — ids are never reused.
  /// Caller must hold LockMembership().
  void RetireReplica(NodeId node);

 private:
  /// The Bus when in-process (fault APIs available), else throws.
  Bus& RequireBus(const char* what) const;

  StoreOptions options_;
  /// The message substrate: a Bus, or a TcpTransport hosting every node
  /// on loopback. bus_/tcp_ are borrowed views of transport_ for the
  /// implementation-specific surfaces (fault injection / wire stats).
  std::unique_ptr<Transport> transport_;
  Bus* bus_ = nullptr;
  net::TcpTransport* tcp_ = nullptr;
  /// Per-replica group-commit coordinators (group-commit durability
  /// only): one committer thread per replica making the fsync decision
  /// across all of that replica's shard WAL segments. Declared before
  /// replicas_ so it is destroyed after the backends that reference it
  /// (each backend also holds a shared_ptr, so this is belt and braces).
  std::map<NodeId, std::shared_ptr<storage::GroupCommitCoordinator>>
      commit_coordinators_;
  /// Replica servers keyed by node id: founding replicas occupy [0,
  /// replicas); replicas added at runtime get ids above the coordinator
  /// slot, so the key set goes non-contiguous under churn.
  std::map<NodeId, std::unique_ptr<ReplicaServer>> replicas_;
  std::size_t next_client_ = 0;

  std::shared_ptr<ConfigTable> table_;
  /// Serializes whole membership operations (reconfig::AddReplica /
  /// RemoveReplica hold it across all three phases).
  std::mutex membership_mu_;
  /// Guards members_ / current_config_ (read by MakeClient on any thread,
  /// written by CommitMembership under membership_mu_).
  mutable std::mutex state_mu_;
  std::vector<NodeId> members_;
  std::uint32_t current_config_ = 0;
  NodeId next_replica_id_ = 0;
};

}  // namespace qcnt::runtime
