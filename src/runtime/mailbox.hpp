// A blocking MPSC mailbox.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/message.hpp"

namespace qcnt::runtime {

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void Push(Envelope e);

  /// Block until a message arrives or the deadline passes; nullopt on
  /// timeout or when the mailbox is closed and drained.
  std::optional<Envelope> Pop(std::chrono::steady_clock::time_point deadline);

  /// Block indefinitely; nullopt only when closed and drained.
  std::optional<Envelope> Pop();

  /// Never blocks (no condition-variable wait, just the queue lock):
  /// nullopt when the queue is momentarily empty. The async client's
  /// opportunistic drain between blocking waits.
  std::optional<Envelope> TryPop();

  /// Wake all waiters; subsequent Pops drain the queue then return nullopt.
  void Close();

  /// Undo Close: subsequent Pushes are accepted again. A node that crashed
  /// while the store was shutting down (Close) and is later recovered must
  /// get a usable mailbox back, or sends to it vanish silently.
  void Reopen();

  /// Discard every queued message (fail-stop crash: the backlog dies with
  /// the node). The mailbox stays usable for later pushes.
  void Clear();

  std::size_t Size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

}  // namespace qcnt::runtime
