// Compatibility shim: Mailbox moved to src/net (it is the delivery
// surface of every Transport, not a runtime-only detail). Existing
// runtime code and tests keep including and naming it from here.
#pragma once

#include "net/mailbox.hpp"

namespace qcnt::runtime {

using net::Mailbox;

}  // namespace qcnt::runtime
