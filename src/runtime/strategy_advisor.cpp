#include "runtime/strategy_advisor.hpp"

#include <utility>

#include "common/check.hpp"
#include "runtime/store.hpp"

namespace qcnt::runtime {

StrategyAdvisor::StrategyAdvisor(ReplicatedStore& store,
                                 StrategyAdvisorOptions options)
    : store_(&store), options_(std::move(options)) {
  QCNT_CHECK_MSG(
      options_.write_heavy_threshold < options_.read_heavy_threshold,
      "thresholds must leave a hysteresis band");
  // Fail at construction, not mid-flight: both target strategies must at
  // least name a derivable family (membership-size fit is checked per
  // switch, since the member set moves underneath the advisor).
  QCNT_CHECK_MSG(
      options_.read_heavy.kind != quorum::StrategyKind::kOpaque &&
          options_.balanced.kind != quorum::StrategyKind::kOpaque,
      "advisor strategies must be descriptor-derivable (not opaque)");
}

StrategyAdvisor::~StrategyAdvisor() { Stop(); }

void StrategyAdvisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  // Baseline the counters so the first window measures only traffic that
  // happened while the advisor was watching.
  const BatchStats bs = store_->TotalBatchStats();
  last_reads_ = bs.read_ops;
  last_writes_ = bs.write_ops;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Run(); });
}

void StrategyAdvisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void StrategyAdvisor::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.poll_interval, [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void StrategyAdvisor::Tick() {
  const BatchStats bs = store_->TotalBatchStats();
  std::uint64_t reads, writes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reads = bs.read_ops - last_reads_;
    writes = bs.write_ops - last_writes_;
    last_reads_ = bs.read_ops;
    last_writes_ = bs.write_ops;
    ++stats_.windows;
  }
  const std::uint64_t total = reads + writes;
  if (total < options_.min_ops_per_window) return;
  const double read_fraction =
      static_cast<double>(reads) / static_cast<double>(total);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.last_read_fraction = read_fraction;
    if (std::chrono::steady_clock::now() < cooldown_until_) return;
  }
  const quorum::StrategyKind current = store_->ConfigTableRef()
                                           ->At(store_->CurrentConfigId())
                                           ->system.descriptor.kind;
  const quorum::StrategyDescriptor* want = nullptr;
  if (read_fraction >= options_.read_heavy_threshold &&
      current != options_.read_heavy.kind) {
    want = &options_.read_heavy;
  } else if (read_fraction <= options_.write_heavy_threshold &&
             current != options_.balanced.kind) {
    want = &options_.balanced;
  }
  if (want == nullptr) return;
  std::string error;
  SwitchTo(*want, &error);
}

bool StrategyAdvisor::SwitchTo(const quorum::StrategyDescriptor& d,
                               std::string* error) {
  // Strategy switches are membership operations minus the member change:
  // same lock, same append-stamp-commit order.
  const auto membership = store_->LockMembership();
  std::vector<NodeId> members = store_->Members();

  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed_switches;
    stats_.last_error = why;
    return false;
  };

  MemberConfig target_cfg;
  try {
    target_cfg = ConfigTable::FromDescriptor(d, members);
  } catch (const quorum::StrategyConfigError& e) {
    return fail(std::string("strategy cannot span the membership: ") +
                e.what());
  }
  // Append before stamping, like every reconfiguration: a failed stamp
  // leaves an unstamped entry no replica will ever name — harmless.
  const std::uint32_t target =
      store_->ConfigTableRef()->Append(std::move(target_cfg));

  QuorumClient client(store_->TransportRef(), store_->CoordinatorId(),
                      store_->ConfigTableRef(), store_->CurrentConfigId(),
                      options_.client);
  const ClientResult r = client.Reconfigure(target);
  if (!r.ok) {
    return fail(std::string("reconfigure found no quorum (") +
                ToString(r.status) + ")");
  }
  store_->CommitMembership(std::move(members), target);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.switches;
    stats_.last_error.clear();
    cooldown_until_ = std::chrono::steady_clock::now() + options_.cooldown;
  }
  return true;
}

StrategyAdvisor::Stats StrategyAdvisor::AdvisorStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qcnt::runtime
