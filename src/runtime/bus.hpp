// In-process message bus: one mailbox per node, crash/recover simulation,
// and a seeded fault-injection layer.
//
// Sends to crashed nodes are silently dropped, as are sends *from* crashed
// nodes, so a crashed replica is indistinguishable from a network-isolated
// one — which is exactly the failure model quorum consensus tolerates.
//
// With no FaultPlan installed the bus delivers every message exactly once,
// in order, instantly (the fail-stop ideal the paper assumes). A FaultPlan
// turns each directed link (from, to) into a lossy, duplicating, delaying,
// reordering channel — the baseline network model of Gray & Lamport's
// "Consensus on Transaction Commit" — driven by a deterministic per-link
// RNG stream, so a chaos run is reproducible from one 64-bit seed. Faults
// apply only to Send(); internal side channels (shutdown, peeks) push into
// mailboxes directly and stay reliable.
//
// One deliberate deviation from strict fail-stop: a message held by the
// injector (delayed or buffered for reorder) when its destination crashes
// is dropped only if the node is still down at delivery time. If the node
// recovers first, the straggler is delivered — real networks do exactly
// this, and it is why replicas must treat re-deliveries idempotently
// (ApplyToImage rejects stale versions; see replica_server.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "runtime/mailbox.hpp"

namespace qcnt::runtime {

/// The substrate abstraction the runtime is written against; the Bus is
/// its in-process implementation, net::TcpTransport the cross-process
/// one (see net/transport.hpp).
using Transport = net::Transport;

/// Per-link fault injection plan. Probabilities are per message; decisions
/// are drawn from a per-link RNG seeded by (seed, from, to), so the same
/// seed and the same per-link send sequence yield the same drops,
/// duplicates, delays, and reorder keys on every run.
struct FaultPlan {
  /// P(message silently dropped).
  double drop = 0.0;
  /// P(message delivered twice). Copies take independent delay samples.
  double duplicate = 0.0;
  /// Uniform delivery delay in [delay_min, delay_max]; zero max = deliver
  /// inline. Delayed messages are released by a background network thread.
  std::chrono::microseconds delay_min{0};
  std::chrono::microseconds delay_max{0};
  /// Bounded reordering: each message draws a rank in [0, reorder_window]
  /// and passes through a per-link holdback buffer of that size, so a
  /// message can overtake at most reorder_window predecessors.
  std::size_t reorder_window = 0;
  /// Liveness valve for the holdback buffer: entries older than this are
  /// flushed (in rank order) by the network thread even if the buffer
  /// never fills, so a quiet link cannot strand its tail forever.
  std::chrono::microseconds reorder_hold{2000};
  /// Root seed for the per-link decision streams.
  std::uint64_t seed = 0x5eedfa017ull;

  bool Active() const {
    return drop > 0.0 || duplicate > 0.0 || delay_max.count() > 0 ||
           reorder_window > 0;
  }
};

/// Injection counters (what the fault layer actually did), alongside the
/// bus-level sent/dropped totals.
struct FaultStats {
  std::uint64_t dropped = 0;          // messages eaten by the drop dice
  std::uint64_t duplicated = 0;       // extra copies created
  std::uint64_t delayed = 0;          // deliveries deferred to the net thread
  std::uint64_t reordered = 0;        // messages routed through a holdback
  std::uint64_t partition_drops = 0;  // messages eaten by a partition
};

class Bus final : public Transport {
 public:
  explicit Bus(std::size_t nodes);
  ~Bus() override;

  /// Logical universe size: nodes created at construction plus AddNode
  /// calls. Slots beyond this (up to Capacity) are pre-allocated but dark.
  std::size_t NodeCount() const override {
    return count_.load(std::memory_order_acquire);
  }
  /// Pre-allocated universe ceiling; AddNode beyond it is a check failure.
  std::size_t Capacity() const { return mailboxes_.size(); }
  /// Grow the universe by one node (membership change). The slot's mailbox
  /// and up-flag were pre-allocated at construction, so no existing
  /// reference is invalidated and no send ever races a vector growth. The
  /// new node starts up, with an empty mailbox; fault plans and per-link
  /// streams cover its links lazily, exactly like links between founding
  /// nodes. Returns the new node's id.
  NodeId AddNode();
  Mailbox& MailboxOf(NodeId node) override;

  /// Deliver (or schedule) one message. Returns true when the message was
  /// delivered or handed to the fault layer for (possibly duplicated,
  /// delayed, reordered) delivery; false when it was dropped — sender or
  /// receiver down, link partitioned, or eaten by the drop dice. Callers
  /// that account for side effects (read repair) must count only true.
  bool Send(NodeId from, NodeId to, RtMessage msg) override;

  /// Fail-stop: mark the node down, then hand the queued backlog to the
  /// node's crash hook (which drains it in FIFO order and cuts at a
  /// deterministic position — see replica_server.hpp), or discard it
  /// here when no hook is installed. Either way the mailbox is empty
  /// when Crash returns.
  void Crash(NodeId node) override;
  /// Bring the node back up. Also reopens the node's mailbox: a crash that
  /// raced with CloseAll (shutdown ordering) leaves the mailbox closed, and
  /// without reopening it every post-recovery send would be dropped on the
  /// mailbox floor while the node counts as "up".
  void Recover(NodeId node) override;
  bool IsUp(NodeId node) const override { return up_[node].load(); }

  /// Install a callback that Crash(node) runs after the node is marked
  /// down. The hook owns the queued backlog: a replica server pushes a
  /// crash-drain marker and waits until everything delivered before the
  /// crash has been applied and everything after it refused, so the
  /// whole replica fail-stops at one deterministic point in its message
  /// stream. Pass nullptr to remove.
  void SetCrashHook(NodeId node, std::function<void()> hook) override;

  /// Install a callback that Recover(node) runs after the node is back
  /// up (crash-cut reset; see replica_server.hpp). Pass nullptr to
  /// remove.
  void SetRecoverHook(NodeId node, std::function<void()> hook) override;

  // --- Fault injection -----------------------------------------------------

  /// Install `plan` as the default for every link. Per-link overrides from
  /// SetLinkFaults take precedence. Install plans before traffic flows if
  /// you want the per-link decision streams reproducible from the seed
  /// (links lazily seed their RNG on first faulty send).
  void SetFaults(const FaultPlan& plan);
  /// Override the plan for one directed link.
  void SetLinkFaults(NodeId from, NodeId to, const FaultPlan& plan);
  /// Remove the default plan and all per-link overrides (partitions and
  /// in-flight held messages are untouched).
  void ClearFaults();

  /// Partition the two node sets from each other: sends from a member of
  /// `a` to a member of `b` are dropped, and symmetrically unless
  /// `symmetric` is false (asymmetric partitions model one-way link loss).
  void Partition(const std::vector<NodeId>& a, const std::vector<NodeId>& b,
                 bool symmetric = true);
  /// Heal every partition installed by Partition().
  void Heal();

  /// Deliver everything the fault layer is still holding — reorder
  /// buffers in rank order, then all delayed messages regardless of due
  /// time. A test's end-of-run drain; not part of the modeled network.
  void FlushFaults();

  FaultStats InjectedFaults() const;

  std::uint64_t MessagesSent() const override { return sent_.load(); }
  std::uint64_t MessagesDropped() const override { return dropped_.load(); }

  const char* Name() const override { return "bus"; }

  /// Close every mailbox (shutdown).
  void CloseAll() override;

 private:
  struct HeldMessage {
    std::uint64_t rank = 0;  // release order within the link
    std::chrono::steady_clock::time_point flush_at{};
    NodeId to = 0;
    Envelope e;
  };
  struct LinkState {
    std::optional<FaultPlan> plan;  // overrides the default plan
    Rng rng{0};
    bool seeded = false;
    std::uint64_t seq = 0;          // messages sent on this link
    std::vector<HeldMessage> held;  // reorder holdback (≤ window entries)
  };
  struct DelayedMessage {
    std::chrono::steady_clock::time_point due{};
    std::uint64_t tie = 0;  // FIFO among equal due times
    NodeId to = 0;
    Envelope e;
  };

  /// Directed-link key, stable under universe growth: (from << 32) | to.
  /// Keying (and seeding) by a NodeCount()-based index would re-map every
  /// link — and restart every per-link fault stream — whenever a node
  /// joins; the pair key keeps streams pinned to their link forever.
  static std::uint64_t LinkKey(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) |
           static_cast<std::uint64_t>(to);
  }

  static bool DueLater(const DelayedMessage& a, const DelayedMessage& b);
  bool SendWithFaults(NodeId from, NodeId to, RtMessage msg);
  /// All helpers below require fault_mu_ held.
  const FaultPlan* PlanFor(LinkState& link) const;
  void SeedLink(LinkState& link, NodeId from, NodeId to,
                const FaultPlan& plan);
  void DeliverOrDelay(LinkState& link, const FaultPlan& plan, NodeId to,
                      Envelope e);
  void DeliverNow(NodeId to, Envelope e);
  void ReleaseLowestRank(LinkState& link, const FaultPlan& plan);
  void FlushLink(LinkState& link);
  void EnsureNetThread();
  void NetLoop();

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // sized to Capacity()
  std::vector<std::atomic<bool>> up_;                // sized to Capacity()
  std::atomic<std::size_t> count_{0};                // logical node count
  mutable std::mutex hooks_mu_;
  std::vector<std::function<void()>> crash_hooks_;
  std::vector<std::function<void()>> recover_hooks_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};

  // Fault layer. The flag gates the hot path: with no plans and no
  // partitions ever installed, Send never touches fault_mu_.
  std::atomic<bool> faults_active_{false};
  mutable std::mutex fault_mu_;
  std::condition_variable fault_cv_;
  std::optional<FaultPlan> default_plan_;
  std::unordered_map<std::uint64_t, LinkState> links_;   // key: LinkKey
  std::unordered_set<std::uint64_t> blocked_;            // partitioned links
  FaultStats fault_stats_;
  std::vector<DelayedMessage> delayed_;  // min-heap on (due, tie)
  std::uint64_t delayed_tie_ = 0;
  std::thread net_thread_;
  bool net_stop_ = false;
};

}  // namespace qcnt::runtime
