// In-process message bus: one mailbox per node, crash/recover simulation.
//
// Sends to crashed nodes are silently dropped, as are sends *from* crashed
// nodes, so a crashed replica is indistinguishable from a network-isolated
// one — which is exactly the failure model quorum consensus tolerates.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/mailbox.hpp"

namespace qcnt::runtime {

class Bus {
 public:
  explicit Bus(std::size_t nodes);

  std::size_t NodeCount() const { return mailboxes_.size(); }
  Mailbox& MailboxOf(NodeId node);

  void Send(NodeId from, NodeId to, RtMessage msg);

  /// Fail-stop: mark the node down and drain its mailbox, so messages
  /// queued before the crash are not processed afterward.
  void Crash(NodeId node);
  /// Bring the node back up. Also reopens the node's mailbox: a crash that
  /// raced with CloseAll (shutdown ordering) leaves the mailbox closed, and
  /// without reopening it every post-recovery send would be dropped on the
  /// mailbox floor while the node counts as "up".
  void Recover(NodeId node);
  bool IsUp(NodeId node) const { return up_[node].load(); }

  /// Install a callback that Crash(node) runs after the node is marked
  /// down and its bus mailbox drained. A sharded replica clears its shard
  /// sub-mailboxes (and aborts any cross-shard barrier) here, so the whole
  /// replica fail-stops atomically: once Crash returns, no shard will
  /// answer a pre-crash message. Pass nullptr to remove.
  void SetCrashHook(NodeId node, std::function<void()> hook);

  std::uint64_t MessagesSent() const { return sent_.load(); }
  std::uint64_t MessagesDropped() const { return dropped_.load(); }

  /// Close every mailbox (shutdown).
  void CloseAll();

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::atomic<bool>> up_;
  mutable std::mutex hooks_mu_;
  std::vector<std::function<void()>> crash_hooks_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace qcnt::runtime
