#include "runtime/replica_server.hpp"

namespace qcnt::runtime {

ReplicaServer::ReplicaServer(Bus& bus, NodeId id) : bus_(&bus), id_(id) {
  thread_ = std::thread([this] { Loop(); });
}

ReplicaServer::~ReplicaServer() { Shutdown(); }

void ReplicaServer::Shutdown() {
  if (!thread_.joinable()) return;
  // Push directly: the bus would drop the message if this node is
  // "crashed", but shutdown must always get through.
  bus_->MailboxOf(id_).Push(
      Envelope{id_, RtMessage{RtMessage::Kind::kShutdown, 0, {}, 0, 0, 0, 0}});
  thread_.join();
}

void ReplicaServer::Loop() {
  for (;;) {
    std::optional<Envelope> e = bus_->MailboxOf(id_).Pop();
    if (!e) return;                                      // mailbox closed
    if (e->msg.kind == RtMessage::Kind::kShutdown) return;
    Handle(*e);
  }
}

void ReplicaServer::Handle(const Envelope& e) {
  const RtMessage& m = e.msg;
  RtMessage reply;
  reply.op = m.op;
  reply.key = m.key;
  switch (m.kind) {
    case RtMessage::Kind::kReadReq: {
      const Versioned& v = data_[m.key];
      reply.kind = RtMessage::Kind::kReadResp;
      reply.version = v.version;
      reply.value = v.value;
      reply.generation = generation_;
      reply.config_id = config_id_;
      break;
    }
    case RtMessage::Kind::kWriteReq: {
      Versioned& v = data_[m.key];
      // (version, value) is a total order: concurrent writers that race to
      // the same version converge deterministically (the verified automaton
      // layer shows a concurrency-control layer prevents such races; the
      // runtime stays safe without one).
      if (m.version > v.version ||
          (m.version == v.version && m.value >= v.value)) {
        v.version = m.version;
        v.value = m.value;
      }
      reply.kind = RtMessage::Kind::kWriteAck;
      break;
    }
    case RtMessage::Kind::kConfigWriteReq: {
      if (m.generation >= generation_) {
        generation_ = m.generation;
        config_id_ = m.config_id;
      }
      reply.kind = RtMessage::Kind::kConfigWriteAck;
      break;
    }
    default:
      return;
  }
  bus_->Send(id_, e.from, std::move(reply));
}

}  // namespace qcnt::runtime
