#include "runtime/replica_server.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "runtime/sharding.hpp"

namespace qcnt::runtime {

namespace {
/// Default (and ceiling-guarded) entries per catchup chunk. Bounded
/// chunks are the point: the donor never materializes more than one
/// chunk, and the joiner applies chunk k before chunk k+1 is requested,
/// so live traffic interleaves at chunk granularity.
constexpr std::size_t kCatchupChunkEntries = 128;
constexpr std::size_t kCatchupChunkCeiling = 4096;

std::size_t ResolveWorkerCount(std::size_t shards, std::size_t requested) {
  std::size_t w = requested == 0 ? DefaultWorkersPerReplica(shards) : requested;
  if (w == 0) w = 1;
  return w < shards ? w : shards;
}
}  // namespace

ReplicaServer::ReplicaServer(Transport& transport, NodeId id)
    : ReplicaServer(transport, id, 1, [](std::size_t) {
        return storage::MakeMemoryBackend();
      }) {}

ReplicaServer::ReplicaServer(Transport& transport, NodeId id,
                             const std::size_t shards,
                             const BackendFactory& make_backend,
                             bool record_history, std::size_t workers)
    : transport_(&transport), id_(id), record_history_(record_history) {
  QCNT_CHECK(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->backend = make_backend(s);
    QCNT_CHECK(shard->backend != nullptr);
    shards_.push_back(std::move(shard));
  }
  // Worker pool: shards are multiplexed round-robin onto
  // min(shards, cores) threads unless an explicit count is given. The
  // assignment is fixed for the server's lifetime — a shard's image and
  // backend are only ever touched by its owning worker, which is the
  // whole thread-safety story.
  const std::size_t w_count = ResolveWorkerCount(shards, workers);
  workers_.reserve(w_count);
  for (std::size_t w = 0; w < w_count; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->wal_parts.assign(shards, {});
    worker->touched_flag.assign(shards, 0);
    workers_.push_back(std::move(worker));
  }
  worker_of_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    worker_of_[s] = s % w_count;
    workers_[s % w_count]->owned.push_back(s);
  }
  // The crash hook makes Transport::Crash a deterministic cut: it pushes
  // a kCrashDrain marker and waits until every loop thread passed it, so
  // everything delivered before the crash is applied and everything after
  // is refused. The recover hook re-arms the node for external work.
  transport_->SetCrashHook(id_, [this] { OnBusCrash(); });
  transport_->SetRecoverHook(id_, [this] { OnBusRecover(); });
  Start();
}

ReplicaServer::~ReplicaServer() {
  Shutdown();
  transport_->SetCrashHook(id_, nullptr);
  transport_->SetRecoverHook(id_, nullptr);
}

void ReplicaServer::Start() {
  for (auto& sh : shards_) {
    sh->image = sh->backend->Recover();
  }
  for (auto& w : workers_) {
    w->inbox.Clear();  // drop anything queued across a crash/restart
  }
  route_bufs_.assign(workers_.size(), {});
  split_parts_.assign(workers_.size(), {});
  crash_cut_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    live_threads_ = Multi() ? workers_.size() + 1 : 1;
  }
  if (Multi()) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      workers_[w]->thread = std::thread([this, w] { WorkerLoop(w); });
    }
    thread_ = std::thread([this] { DispatchLoop(); });
  } else {
    thread_ = std::thread([this] { SingleLoop(); });
  }
}

void ReplicaServer::NoteThreadExit() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --live_threads_;
  }
  // A crash-drain waiter must not hang on a node whose loops are gone.
  drain_cv_.notify_all();
}

void ReplicaServer::Shutdown() {
  if (!thread_.joinable()) return;
  // Push directly: the bus would drop the message if this node is
  // "crashed", but shutdown must always get through. The dispatch loop
  // forwards the shutdown to every worker before exiting.
  RtMessage m;
  m.kind = RtMessage::Kind::kShutdown;
  transport_->MailboxOf(id_).Push(Envelope{id_, std::move(m)});
  thread_.join();
  thread_ = std::thread();
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
      w->thread = std::thread();
    }
  }
}

void ReplicaServer::StopWorkers() {
  for (auto& w : workers_) {
    RtMessage m;
    m.kind = RtMessage::Kind::kShutdown;
    w->inbox.Push(Envelope{id_, std::move(m)});
  }
}

void ReplicaServer::OnBusCrash() {
  // Runs inside Transport::Crash, after up_ flipped but with the bus
  // mailbox intact: this hook owns the backlog. Instead of clearing
  // mailboxes from the crashing thread (which raced in-flight peeks and
  // could vaporize messages a worker was entitled to finish), push a
  // kCrashDrain marker through the normal pipeline and wait until every
  // worker has passed it. Everything ahead of the marker was delivered
  // before the crash and is applied; everything behind it is refused via
  // Crashed() — a deterministic FIFO cut with no cleared queues.
  std::lock_guard<std::mutex> call(drain_call_mu_);  // serialize crashes
  // Wake a dispatch thread parked mid-config-barrier: up_ is already
  // false, so its predicate releases and it proceeds to the marker.
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
  }
  barrier_cv_.notify_all();
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (live_threads_ == 0) {
      // No loop will ever see a marker (crash raced shutdown or hit a
      // node wiped by CrashAndWipe): discard the backlog directly.
      transport_->MailboxOf(id_).Clear();
      for (auto& w : workers_) w->inbox.Clear();
      return;
    }
    epoch = ++drain_epoch_;
    drain_acks_ = 0;
  }
  RtMessage m;
  m.kind = RtMessage::Kind::kCrashDrain;
  m.generation = epoch;  // ack matching across overlapping crashes
  // Push directly: Send would drop on the (now down) node, and the marker
  // must ride the same FIFO as the backlog it cuts.
  transport_->MailboxOf(id_).Push(Envelope{id_, std::move(m)});
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return (drain_epoch_ == epoch && drain_acks_ >= DrainTarget()) ||
           live_threads_ == 0;
  });
}

void ReplicaServer::OnBusRecover() {
  // Eager re-arm. The lazy reset inside Crashed() alone would be racy
  // across crash→recover→crash: a message delivered between the recover
  // and the second crash (thus ahead of the second marker) would be
  // wrongly dropped by the stale cut.
  crash_cut_.store(false, std::memory_order_release);
}

bool ReplicaServer::Crashed() {
  if (!crash_cut_.load(std::memory_order_acquire)) return false;
  if (transport_->IsUp(id_)) {
    // Recovered between the transport flipping up_ and the recover hook
    // running; clear the cut lazily.
    crash_cut_.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void ReplicaServer::AckCrashDrain(std::uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (epoch == drain_epoch_) ++drain_acks_;
  }
  drain_cv_.notify_all();
}

void ReplicaServer::FlushRoutes() {
  for (std::size_t w = 0; w < route_bufs_.size(); ++w) {
    if (!route_bufs_[w].empty()) workers_[w]->inbox.PushAll(route_bufs_[w]);
  }
}

void ReplicaServer::CrashAndWipe() {
  Shutdown();
  join_ = JoinState{};  // a pull in progress dies with the node
  {
    // The remembered config payload is volatile replica state too; a
    // wiped replica re-learns it from the next config write.
    std::lock_guard<std::mutex> lock(config_payload_mu_);
    config_payload_.reset();
    config_payload_gen_ = 0;
    config_payload_id_ = 0;
  }
  for (auto& sh : shards_) {
    sh->image = storage::Image{};
    sh->history.clear();  // volatile, dies with the node
    sh->backend->OnCrash();
  }
}

void ReplicaServer::Restart() {
  if (thread_.joinable()) return;
  Start();
}

ReplicaSnapshot ReplicaServer::Peek() {
  QCNT_CHECK_MSG(Running(), "Peek() requires a running replica");
  std::lock_guard<std::mutex> call(peek_call_mu_);
  std::unique_lock<std::mutex> lock(peek_mu_);
  const std::uint64_t epoch = ++peek_epoch_;
  peek_slots_.assign(shards_.size(), ReplicaSnapshot{});
  peek_filled_.assign(shards_.size(), 0);
  peek_served_ = 0;
  const auto push_request = [&] {
    RtMessage m;
    m.kind = RtMessage::Kind::kImagePeek;
    m.generation = epoch;
    // Push directly (not Bus::Send): peeking is an observer's side channel
    // and must work even on a bus-partitioned node.
    transport_->MailboxOf(id_).Push(Envelope{id_, std::move(m)});
  };
  push_request();
  while (peek_served_ < shards_.size()) {
    // Crash-drain no longer clears inboxes, so an in-flight peek normally
    // survives a concurrent crash; the timed retry (same epoch, filled
    // flags dedup) remains as a liveness guard for the rare paths that
    // still discard queues (crash racing shutdown, CrashAndWipe).
    if (!peek_cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
          return peek_served_ >= shards_.size();
        })) {
      push_request();
    }
  }
  ReplicaSnapshot out;
  for (ReplicaSnapshot& slot : peek_slots_) {
    // Shard images are key-disjoint; the stamp merge takes the newest.
    for (auto& [key, v] : slot.image.data) {
      out.image.data.emplace(key, v);
    }
    out.image.ApplyConfig(slot.image.generation, slot.image.config_id);
    out.history.insert(out.history.end(),
                       std::make_move_iterator(slot.history.begin()),
                       std::make_move_iterator(slot.history.end()));
    out.storage += slot.storage;
  }
  out.stats = BatchStats();
  return out;
}

void ReplicaServer::ServePeek(std::size_t idx, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(peek_mu_);
  if (epoch != peek_epoch_ || idx >= peek_filled_.size() ||
      peek_filled_[idx]) {
    return;  // stale epoch or a retry already served for this shard
  }
  Shard& sh = *shards_[idx];
  peek_slots_[idx].image = sh.image;
  // Spill mode: the in-memory image is only the un-checkpointed tail.
  // Overlay the checkpoint chain so observers still see the full map;
  // the image merge rule keeps the hot copy wherever both layers hold a
  // key. Non-spill backends visit nothing here.
  storage::Image& peeked = peek_slots_[idx].image;
  sh.backend->ScanAll(
      [&peeked](const std::string& key, const storage::Versioned& v) {
        peeked.ApplyWrite(key, v.version, v.value);
      });
  peek_slots_[idx].storage = sh.backend->Stats();
  peek_slots_[idx].history = sh.history;
  peek_filled_[idx] = 1;
  ++peek_served_;
  peek_cv_.notify_all();
}

std::vector<ShardCounters> ReplicaServer::CollectShardCounters() const {
  std::vector<ShardCounters> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    ShardCounters c;
    c.ops = sh.ops.load(std::memory_order_relaxed);
    c.batches = sh.batches.load(std::memory_order_relaxed);
    c.fsyncs = sh.backend->Stats().fsyncs;
    c.queue_peak =
        workers_[worker_of_[s]]->queue_peak.load(std::memory_order_relaxed);
    out.push_back(c);
  }
  return out;
}

storage::StorageStats ReplicaServer::StorageStats() const {
  storage::StorageStats total;
  for (const auto& sh : shards_) total += sh->backend->Stats();
  return total;
}

BatchStats ReplicaServer::BatchStats() const {
  runtime::BatchStats s;
  s.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  s.batched_ops = batched_ops_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.read_ops = read_ops_.load(std::memory_order_relaxed);
  s.write_ops = write_ops_.load(std::memory_order_relaxed);
  s.per_shard = CollectShardCounters();
  const Mailbox& inbox = transport_->MailboxOf(id_);
  s.mailbox_handoffs = inbox.Handoffs();
  s.mailbox_wakeups = inbox.Wakeups();
  if (Multi()) {
    // Single-shard replicas have no dispatch→worker hop; the sole loop
    // consumes the bus mailbox directly (mailbox_* above covers it).
    for (const auto& w : workers_) {
      s.worker_handoffs += w->inbox.Handoffs();
      s.worker_wakeups += w->inbox.Wakeups();
    }
  }
  return s;
}

void ReplicaServer::SingleLoop() {
  Worker& w = *workers_[0];
  Mailbox& mailbox = transport_->MailboxOf(id_);
  for (;;) {
    std::deque<Envelope> batch = mailbox.PopAll();
    if (batch.empty()) {
      NoteThreadExit();
      return;  // mailbox closed and drained
    }
    TrackPeak(w.queue_peak, batch.size());
    for (Envelope& e : batch) {
      if (e.msg.kind == RtMessage::Kind::kShutdown) {
        NoteThreadExit();
        return;
      }
      if (e.msg.kind == RtMessage::Kind::kCrashDrain) {
        crash_cut_.store(true, std::memory_order_release);
        AckCrashDrain(e.msg.generation);
        continue;
      }
      // Behind a crash cut only the internal side channels stay live.
      if (Crashed() && e.msg.kind != RtMessage::Kind::kImagePeek) continue;
      HandleOnWorker(0, e);
    }
  }
}

void ReplicaServer::DispatchLoop() {
  // Bound on the opportunistic drain below: routing stays cheap, so a
  // few extra rounds widen the burst a lot, but the bound keeps a steady
  // producer stream from starving the workers of their flush.
  constexpr int kExtendRounds = 8;
  Mailbox& mailbox = transport_->MailboxOf(id_);
  for (;;) {
    std::deque<Envelope> batch = mailbox.PopAll();
    if (batch.empty()) {
      StopWorkers();  // mailbox closed and drained
      NoteThreadExit();
      return;
    }
    for (int round = 0; round <= kExtendRounds; ++round) {
      for (Envelope& e : batch) {
        if (e.msg.kind == RtMessage::Kind::kShutdown) {
          FlushRoutes();  // work routed before the shutdown still runs
          StopWorkers();
          NoteThreadExit();
          return;
        }
        Route(std::move(e));
      }
      // Opportunistic extension: messages that arrived while this burst
      // was being routed join the same flush, so each worker pays one
      // wakeup for the union instead of one per pop.
      if (round == kExtendRounds) break;
      batch = mailbox.TryPopAll();
      if (batch.empty()) break;
    }
    // One PushAll (one lock acquisition, at most one wakeup) per touched
    // worker for the whole burst — this, not per-message Push, is what
    // keeps dispatch off the worker mutexes at high shard counts.
    FlushRoutes();
  }
}

void ReplicaServer::Route(Envelope e) {
  switch (e.msg.kind) {
    case RtMessage::Kind::kImagePeek:
      // Internal side channel: fan to every worker regardless of up/down.
      // Flush first so the peek observes everything routed ahead of it.
      FlushRoutes();
      for (auto& w : workers_) {
        w->inbox.Push(Envelope{e.from, e.msg});
      }
      return;
    case RtMessage::Kind::kCrashDrain:
      // The crash cut: everything buffered ahead of the marker is still
      // pre-crash work — hand it over, then start refusing. Forwarding
      // the marker to every worker (in FIFO, after the flush) lets each
      // one ack once its own pre-crash backlog is fully applied.
      FlushRoutes();
      crash_cut_.store(true, std::memory_order_release);
      for (auto& w : workers_) {
        RtMessage m;
        m.kind = RtMessage::Kind::kCrashDrain;
        m.generation = e.msg.generation;
        w->inbox.Push(Envelope{id_, std::move(m)});
      }
      return;
    case RtMessage::Kind::kConfigWriteReq:
      if (Crashed()) return;
      // The barrier below blocks this thread on the workers, so anything
      // already buffered must be queued ahead of the config stamp.
      FlushRoutes();
      BroadcastConfigAndAck(e);
      return;
    case RtMessage::Kind::kBatchReadReq:
    case RtMessage::Kind::kBatchWriteReq:
      // Behind the crash cut: refuse. (The up-check in Bus::Send keeps
      // replies from escaping in any case.)
      if (Crashed()) return;
      SplitBatch(std::move(e));
      return;
    case RtMessage::Kind::kReadReq:
    case RtMessage::Kind::kWriteReq: {
      if (Crashed()) return;
      const std::size_t s = ShardForKey(e.msg.key, shards_.size());
      route_bufs_[worker_of_[s]].push_back(std::move(e));
      return;
    }
    case RtMessage::Kind::kCatchupReq: {
      // Donor side: `version` names the shard to scan. A request beyond
      // this replica's layout is answered with an empty chunk whose shard
      // count exposes the mismatch (the puller refuses the join).
      if (Crashed()) return;
      if (e.msg.version < shards_.size()) {
        route_bufs_[worker_of_[e.msg.version]].push_back(std::move(e));
      } else {
        RtMessage refusal;
        refusal.kind = RtMessage::Kind::kCatchupChunk;
        refusal.op = e.msg.op;
        refusal.version = shards_.size();
        transport_->Send(id_, e.from, std::move(refusal));
      }
      return;
    }
    case RtMessage::Kind::kJoinReq:
      if (Crashed()) return;
      HandleJoinReq(e);
      return;
    case RtMessage::Kind::kCatchupChunk:
      if (Crashed()) return;
      HandleJoinChunk(e);
      return;
    default:
      return;
  }
}

void ReplicaServer::SplitBatch(Envelope e) {
  // Split per *worker*, not per shard: the worker re-resolves each
  // entry's shard on its own thread, so co-located shards cost no extra
  // envelopes (and no extra acks back to the client) — at one worker the
  // message profile degenerates to exactly the single-shard one.
  for (auto& part : split_parts_) part.clear();
  for (BatchEntry& entry : e.msg.batch) {
    const std::size_t s = ShardForKey(entry.key, shards_.size());
    split_parts_[worker_of_[s]].push_back(std::move(entry));
  }
  for (std::size_t w = 0; w < split_parts_.size(); ++w) {
    if (split_parts_[w].empty()) continue;
    RtMessage m;
    m.kind = e.msg.kind;
    m.op = e.msg.op;
    // The stamp must ride on every sub-batch: the per-shard generation
    // fence compares against it, and stripping it here would make every
    // shard fence all batch installs once any reconfiguration bumped the
    // store past generation zero.
    m.generation = e.msg.generation;
    m.config_id = e.msg.config_id;
    m.batch = std::move(split_parts_[w]);
    route_bufs_[w].push_back(Envelope{e.from, std::move(m)});
  }
}

void ReplicaServer::NoteConfigPayload(const RtMessage& m) {
  if (!m.config) return;
  std::lock_guard<std::mutex> lock(config_payload_mu_);
  // Same (generation, config_id) order as the shard stamps: an orphaned
  // stamp from a lost reconfigure attempt is superseded, a duplicated
  // install is a no-op.
  if (m.generation > config_payload_gen_ ||
      (m.generation == config_payload_gen_ &&
       m.config_id >= config_payload_id_)) {
    config_payload_gen_ = m.generation;
    config_payload_id_ = m.config_id;
    config_payload_ = std::make_shared<const ConfigPayload>(*m.config);
  }
}

void ReplicaServer::MaybeAttachConfig(const RtMessage& req,
                                      RtMessage& reply) {
  // Only a reply that teaches a newer stamp than the requester already
  // holds needs the payload; an up-to-date client resolves the id from
  // its own table.
  if (reply.generation < req.generation ||
      (reply.generation == req.generation &&
       reply.config_id <= req.config_id)) {
    return;
  }
  std::lock_guard<std::mutex> lock(config_payload_mu_);
  if (config_payload_ != nullptr && config_payload_id_ == reply.config_id) {
    reply.config = *config_payload_;
  }
}

void ReplicaServer::BroadcastConfigAndAck(const Envelope& e) {
  NoteConfigPayload(e.msg);
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    epoch = ++barrier_epoch_;
    barrier_pending_ = workers_.size();
  }
  for (auto& w : workers_) {
    RtMessage m = e.msg;
    m.value = static_cast<std::int64_t>(epoch);  // barrier epoch
    w->inbox.Push(Envelope{e.from, std::move(m)});
  }
  {
    std::unique_lock<std::mutex> lock(barrier_mu_);
    barrier_cv_.wait(lock, [&] {
      return barrier_pending_ == 0 || !transport_->IsUp(id_);
    });
    // Crashed mid-barrier: abandon the wait so the dispatch thread can go
    // process the drain marker. The stamp was delivered pre-crash, so the
    // workers may still apply it — but no ack escapes (the node is down),
    // and an unacked reconfiguration carries no guarantee.
    if (barrier_pending_ != 0) return;
  }
  RtMessage ack;
  ack.kind = RtMessage::Kind::kConfigWriteAck;
  ack.op = e.msg.op;
  ack.config = e.msg.config;  // echo: the ack is self-describing too
  transport_->Send(id_, e.from, std::move(ack));
}

bool ReplicaServer::ApplyToImage(Shard& sh, const std::string& key,
                                 std::uint64_t version, std::int64_t value) {
  auto it = sh.image.data.find(key);
  if (it == sh.image.data.end()) {
    // Spill mode: a key absent from the in-memory map may still hold a
    // durable version in the checkpoint chain — install that before the
    // merge below, or a retried/stale install could regress an acked
    // version the image evicted. Lookup leaves `cold` zeroed on a true
    // miss (memory backends and non-spill durables return false
    // immediately), reproducing the old default-insert.
    storage::Versioned cold;
    sh.backend->Lookup(key, &cold);
    it = sh.image.data.emplace(key, cold).first;
  }
  storage::Versioned& v = it->second;
  // (version, value) is a total order: concurrent writers that race to
  // the same version converge deterministically (the verified automaton
  // layer shows a concurrency-control layer prevents such races; the
  // runtime stays safe without one). Strictly-greater on the value leg
  // makes the apply idempotent: a re-delivered copy of an already-held
  // (version, value) is a no-op — no duplicate history entry, and (in the
  // batch path) no duplicate WAL record — while still being acked, which
  // is what lets a lossy/duplicating bus retry writes safely.
  if (version > v.version || (version == v.version && value > v.value)) {
    v.version = version;
    v.value = value;
    if (record_history_) sh.history.push_back({key, version, value});
    return true;
  }
  return false;
}

void ReplicaServer::TrackPeak(std::atomic<std::uint64_t>& peak,
                              std::uint64_t v) {
  std::uint64_t prev = peak.load(std::memory_order_relaxed);
  while (prev < v && !peak.compare_exchange_weak(prev, v,
                                                 std::memory_order_relaxed)) {
  }
}

void ReplicaServer::NoteTouched(Worker& w, std::size_t s) {
  if (!w.touched_flag[s]) {
    w.touched_flag[s] = 1;
    w.touched.push_back(s);
  }
}

void ReplicaServer::FlushTouched(Worker& w) {
  for (const std::size_t s : w.touched) {
    Shard& sh = *shards_[s];
    sh.batches.fetch_add(1, std::memory_order_relaxed);
    if (!w.wal_parts[s].empty()) {
      // One write(2) and one group-commit fsync decision per shard the
      // batch touched, before the single ack that covers them all —
      // write-ahead still holds: the ack covers exactly the records the
      // backends accepted.
      sh.backend->ApplyWriteBatch(w.wal_parts[s]);
      sh.backend->MaybeCompact(sh.image);
      w.wal_parts[s].clear();
    }
    w.touched_flag[s] = 0;
  }
  w.touched.clear();
}

void ReplicaServer::CountBatchTotals(std::size_t entries) {
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  batched_ops_.fetch_add(entries, std::memory_order_relaxed);
  TrackPeak(max_batch_, entries);
}

void ReplicaServer::HandleBatchRead(Worker& w, const RtMessage& m,
                                    RtMessage& reply) {
  reply.kind = RtMessage::Kind::kBatchReadResp;
  reply.batch.reserve(m.batch.size());
  // The header stamp teaches the client the store's configuration; a
  // worker's shards can only disagree transiently (recovery from a crash
  // mid-barrier), so report the newest stamp seen across touched shards.
  std::uint64_t gen = 0;
  std::uint32_t cfg = 0;
  for (const BatchEntry& entry : m.batch) {
    const std::size_t s = ShardForKey(entry.key, shards_.size());
    Shard& sh = *shards_[s];
    NoteTouched(w, s);
    if (sh.image.generation > gen ||
        (sh.image.generation == gen && sh.image.config_id > cfg)) {
      gen = sh.image.generation;
      cfg = sh.image.config_id;
    }
    storage::Versioned v;  // image first, then the cold layer (see kReadReq)
    if (const auto it = sh.image.data.find(entry.key);
        it != sh.image.data.end()) {
      v = it->second;
    } else {
      sh.backend->Lookup(entry.key, &v);
    }
    reply.batch.push_back(
        BatchEntry{entry.op, entry.key, v.version, v.value});
    sh.ops.fetch_add(1, std::memory_order_relaxed);
  }
  reply.generation = gen;
  reply.config_id = cfg;
  MaybeAttachConfig(m, reply);
  FlushTouched(w);
  CountBatchTotals(m.batch.size());
  read_ops_.fetch_add(m.batch.size(), std::memory_order_relaxed);
}

void ReplicaServer::HandleBatchWrite(Worker& w, const RtMessage& m,
                                     RtMessage& reply) {
  reply.kind = RtMessage::Kind::kBatchWriteAck;
  reply.batch.reserve(m.batch.size());
  std::uint64_t gen = 0;
  std::uint32_t cfg = 0;
  for (const BatchEntry& entry : m.batch) {
    const std::size_t s = ShardForKey(entry.key, shards_.size());
    Shard& sh = *shards_[s];
    NoteTouched(w, s);
    if (sh.image.generation > gen ||
        (sh.image.generation == gen && sh.image.config_id > cfg)) {
      gen = sh.image.generation;
      cfg = sh.image.config_id;
    }
    // Generation fence per entry against its shard's stamp: refused
    // entries ack with value = 1 (NACK) and the header stamp teaches the
    // client the configuration that fenced them.
    const bool fenced = m.generation < sh.image.generation;
    if (!fenced && ApplyToImage(sh, entry.key, entry.version, entry.value)) {
      storage::WalRecord rec;
      rec.type = storage::WalRecord::Type::kWrite;
      rec.key = entry.key;
      rec.version = entry.version;
      rec.value = entry.value;
      w.wal_parts[s].push_back(std::move(rec));
    }
    reply.batch.push_back(BatchEntry{entry.op, {}, 0, fenced ? 1 : 0});
    sh.ops.fetch_add(1, std::memory_order_relaxed);
  }
  reply.generation = gen;
  reply.config_id = cfg;
  MaybeAttachConfig(m, reply);
  // Accepted records reach the backends (one batch append + one
  // group-commit decision per touched shard) before the single ack below.
  FlushTouched(w);
  CountBatchTotals(m.batch.size());
  write_ops_.fetch_add(m.batch.size(), std::memory_order_relaxed);
}

void ReplicaServer::HandleOnWorker(std::size_t widx, Envelope& e) {
  Worker& w = *workers_[widx];
  const RtMessage& m = e.msg;
  RtMessage reply;
  reply.op = m.op;
  reply.key = m.key;
  switch (m.kind) {
    case RtMessage::Kind::kReadReq: {
      Shard& sh = *shards_[ShardForKey(m.key, shards_.size())];
      // find(), not operator[]: a read must not grow the image (spill
      // mode keeps it bounded), and a miss falls through to the cold
      // layer — which reports {0, 0} for keys absent everywhere.
      storage::Versioned v;
      if (const auto it = sh.image.data.find(m.key);
          it != sh.image.data.end()) {
        v = it->second;
      } else {
        sh.backend->Lookup(m.key, &v);
      }
      reply.kind = RtMessage::Kind::kReadResp;
      reply.version = v.version;
      reply.value = v.value;
      reply.generation = sh.image.generation;
      reply.config_id = sh.image.config_id;
      MaybeAttachConfig(m, reply);
      sh.ops.fetch_add(1, std::memory_order_relaxed);
      read_ops_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case RtMessage::Kind::kWriteReq: {
      Shard& sh = *shards_[ShardForKey(m.key, shards_.size())];
      reply.kind = RtMessage::Kind::kWriteAck;
      // The ack names this replica's stamp either way — the channel that
      // tells a lagging client the membership changed underneath it.
      reply.generation = sh.image.generation;
      reply.config_id = sh.image.config_id;
      if (m.generation < sh.image.generation) {
        // Generation fence: an install staged under an older generation
        // is refused (value = 1 marks the NACK). This is what guarantees
        // that once a configuration stamp is acked, no write can complete
        // under the old generation purely on fenced replicas — the seal
        // pass of a membership change (DESIGN.md §11) relies on it.
        reply.value = 1;
      } else if (ApplyToImage(sh, m.key, m.version, m.value)) {
        // Write-ahead: the record is logged (and, per fsync policy, made
        // durable) before the ack below is sent.
        sh.backend->ApplyWrite(m.key, m.version, m.value);
        sh.backend->MaybeCompact(sh.image);
      }
      MaybeAttachConfig(m, reply);
      sh.ops.fetch_add(1, std::memory_order_relaxed);
      write_ops_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case RtMessage::Kind::kConfigWriteReq: {
      // The stamp is store-wide: this worker applies it to every shard it
      // owns. Stamps order by (generation, config_id) — config ids are
      // append-ordered, so an equal-generation install of a newer
      // configuration (an orphaned stamp from a timed-out reconfigure
      // attempt colliding with the attempt that won) supersedes, while a
      // duplicated install stays a no-op (no re-log), mirroring
      // ApplyToImage's idempotence.
      for (const std::size_t idx : w.owned) {
        Shard& sh = *shards_[idx];
        if (m.generation > sh.image.generation ||
            (m.generation == sh.image.generation &&
             m.config_id > sh.image.config_id)) {
          sh.image.generation = m.generation;
          sh.image.config_id = m.config_id;
          sh.backend->ApplyConfig(sh.image.generation, sh.image.config_id);
          sh.backend->MaybeCompact(sh.image);
        }
        sh.ops.fetch_add(1, std::memory_order_relaxed);
      }
      if (Multi()) {
        // Barrier leg: the dispatch thread acks once every worker has
        // applied + logged the stamp on all its shards (m.value carries
        // the epoch).
        std::lock_guard<std::mutex> lock(barrier_mu_);
        if (static_cast<std::uint64_t>(m.value) == barrier_epoch_ &&
            barrier_pending_ > 0 && --barrier_pending_ == 0) {
          barrier_cv_.notify_all();
        }
        return;
      }
      // Single-shard mode: no dispatch stage saw this message, so the
      // payload is remembered (and echoed) here.
      NoteConfigPayload(m);
      reply.kind = RtMessage::Kind::kConfigWriteAck;
      reply.config = m.config;
      break;
    }
    case RtMessage::Kind::kBatchReadReq:
      HandleBatchRead(w, m, reply);
      break;
    case RtMessage::Kind::kBatchWriteReq:
      HandleBatchWrite(w, m, reply);
      break;
    case RtMessage::Kind::kImagePeek:
      for (const std::size_t idx : w.owned) ServePeek(idx, m.generation);
      return;  // side channel: no bus reply
    case RtMessage::Kind::kCatchupReq:
      // Dispatch validated m.version < shards (multi); a single-shard
      // donor has only shard 0 to serve.
      ServeCatchup(Multi() ? static_cast<std::size_t>(m.version) : 0, e);
      return;  // replies itself
    case RtMessage::Kind::kJoinReq:
      // Single-shard mode only: the sole worker runs the join state
      // machine directly (multi-shard replicas handle this on dispatch).
      HandleJoinReq(e);
      return;
    case RtMessage::Kind::kCatchupChunk:
      if (Multi()) {
        // Forwarded by the dispatch-side join machinery: just merge.
        ApplyCatchupEntries(w, m.batch);
      } else {
        HandleJoinChunk(e);
      }
      return;
    case RtMessage::Kind::kCrashDrain:
      // Forwarded by dispatch: everything ahead of this marker in the
      // worker inbox has been applied, so the drain waiter can release.
      AckCrashDrain(m.generation);
      return;
    default:
      return;
  }
  transport_->Send(id_, e.from, std::move(reply));
}

void ReplicaServer::ServeCatchup(std::size_t idx, Envelope& e) {
  Shard& sh = *shards_[idx];
  const RtMessage& m = e.msg;
  RtMessage reply;
  reply.kind = RtMessage::Kind::kCatchupChunk;
  reply.op = m.op;
  reply.version = shards_.size();  // layout check on the puller side
  reply.generation = sh.image.generation;
  reply.config_id = sh.image.config_id;
  const std::size_t limit =
      m.value > 0 && static_cast<std::uint64_t>(m.value) <= kCatchupChunkCeiling
          ? static_cast<std::size_t>(m.value)
          : kCatchupChunkEntries;
  // Hot half: the `limit` smallest in-memory keys strictly beyond the
  // cursor (an empty cursor starts the shard; the empty key itself, if
  // present, rides in the first chunk — re-sending it on a resume is a
  // harmless idempotent merge). The image is hash-ordered, so this is
  // O(shard keys) per chunk; it runs on the owning worker thread,
  // between live writes.
  std::vector<const std::pair<const std::string, storage::Versioned>*> cand;
  cand.reserve(sh.image.data.size());
  for (const auto& kv : sh.image.data) {
    if (m.key.empty() || kv.first > m.key) cand.push_back(&kv);
  }
  const bool hot_more = cand.size() > limit;
  const auto by_key = [](const auto* a, const auto* b) {
    return a->first < b->first;
  };
  if (hot_more) {
    std::partial_sort(cand.begin(),
                      cand.begin() + static_cast<std::ptrdiff_t>(limit),
                      cand.end(), by_key);
    cand.resize(limit);
  } else {
    std::sort(cand.begin(), cand.end(), by_key);
  }
  // Cold half (spill mode): checkpointed keys beyond the cursor that the
  // image evicted. ScanAbove yields ascending keys, newest version per
  // key; asking for limit+1 detects a deeper cold tail. The chunk's
  // `limit` smallest keys are a subset of hot[0..limit) ∪ cold[0..limit],
  // so the two bounded sorted runs merge without a full shard scan.
  std::vector<std::pair<std::string, storage::Versioned>> cold;
  sh.backend->ScanAbove(
      m.key, limit + 1,
      [&cold](const std::string& key, const storage::Versioned& v) {
        cold.emplace_back(key, v);
      });
  reply.batch.reserve(limit < cand.size() + cold.size()
                          ? limit
                          : cand.size() + cold.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (reply.batch.size() < limit &&
         (i < cand.size() || j < cold.size())) {
    const bool take_hot =
        j >= cold.size() ||
        (i < cand.size() && cand[i]->first <= cold[j].first);
    if (take_hot) {
      const auto& kv = *cand[i++];
      // A key both hot and cold serves its hot copy — the image version
      // is never older than what a past checkpoint flushed.
      if (j < cold.size() && cold[j].first == kv.first) ++j;
      reply.batch.push_back(
          BatchEntry{0, kv.first, kv.second.version, kv.second.value});
    } else {
      const auto& kv = cold[j++];
      reply.batch.push_back(
          BatchEntry{0, kv.first, kv.second.version, kv.second.value});
    }
  }
  const bool more = hot_more || i < cand.size() || j < cold.size();
  if (!reply.batch.empty()) reply.key = reply.batch.back().key;  // cursor
  reply.value = more ? 1 : 0;
  sh.ops.fetch_add(1, std::memory_order_relaxed);
  transport_->Send(id_, e.from, std::move(reply));
}

void ReplicaServer::SendCatchupReq() {
  RtMessage req;
  req.kind = RtMessage::Kind::kCatchupReq;
  req.op = ++join_.pull_seq;  // invalidates any in-flight stale chunk
  req.key = join_.cursor;
  req.version = join_.shard;
  req.value = static_cast<std::int64_t>(kCatchupChunkEntries);
  transport_->Send(id_, join_.donor, std::move(req));
}

void ReplicaServer::HandleJoinReq(const Envelope& e) {
  const RtMessage& m = e.msg;
  // Same expected layout → resume from (shard, cursor): this is the
  // donor-crash recovery path — the coordinator re-issues the join with
  // the same or a different donor, and the stream continues where it
  // stopped (shard layouts agree, so cursors transfer between donors).
  if (!join_.active ||
      join_.expected_shards != m.version) {
    // pull_seq survives the reset: it must stay monotone against chunks
    // still in flight from an abandoned stream.
    const std::uint64_t seq = join_.pull_seq;
    join_ = JoinState{};
    join_.pull_seq = seq;
    join_.expected_shards = m.version;
  }
  join_.active = true;
  join_.op = m.op;
  join_.donor = static_cast<NodeId>(m.value);
  join_.coordinator = e.from;
  if (join_.shard >= join_.expected_shards) {
    // Nothing left to pull (a done report the coordinator missed).
    RtMessage done;
    done.kind = RtMessage::Kind::kCatchupDone;
    done.op = join_.op;
    done.value = kJoinOk;
    done.version = join_.entries;
    transport_->Send(id_, join_.coordinator, std::move(done));
    join_ = JoinState{};
    return;
  }
  SendCatchupReq();
}

void ReplicaServer::HandleJoinChunk(Envelope& e) {
  RtMessage& m = e.msg;
  // Accept only the answer to the latest outstanding request: duplicates
  // and stale-stream chunks (older pull_seq) are dropped, so a duplicated
  // final chunk can never double-increment the shard counter and skip a
  // shard's remainder.
  if (!join_.active || m.op != join_.pull_seq) return;
  if (m.version != join_.expected_shards) {
    // Shard-layout mismatch: a shard-by-shard stream would land keys on
    // the wrong shard (and the wrong WAL segment). Refuse the join with
    // a typed error; nothing already merged needs undoing (it is all
    // legitimate replicated state).
    RtMessage done;
    done.kind = RtMessage::Kind::kCatchupDone;
    done.op = join_.op;
    done.value = kJoinErrShardMismatch;
    done.version = join_.entries;
    transport_->Send(id_, join_.coordinator, std::move(done));
    join_ = JoinState{};
    return;
  }
  join_.entries += m.batch.size();
  const std::uint32_t shard = join_.shard;
  const bool more = m.value != 0;
  if (!m.batch.empty()) join_.cursor = m.key;
  if (!more) {
    ++join_.shard;
    join_.cursor.clear();
  }
  if (!m.batch.empty()) {
    if (Multi()) {
      // Hand the entries to the owning worker via the route buffer (FIFO
      // with everything else this burst routed there); chunk k is queued
      // before chunk k+1 is requested below, so per-shard order is
      // preserved and at most one chunk is ever in flight.
      RtMessage apply;
      apply.kind = RtMessage::Kind::kCatchupChunk;
      apply.batch = std::move(m.batch);
      route_bufs_[worker_of_[shard]].push_back(
          Envelope{e.from, std::move(apply)});
    } else {
      ApplyCatchupEntries(*workers_[0], m.batch);
    }
  }
  if (join_.shard >= join_.expected_shards) {
    RtMessage done;
    done.kind = RtMessage::Kind::kCatchupDone;
    done.op = join_.op;
    done.value = kJoinOk;
    done.version = join_.entries;
    transport_->Send(id_, join_.coordinator, std::move(done));
    join_ = JoinState{};
    return;
  }
  SendCatchupReq();
}

void ReplicaServer::ApplyCatchupEntries(
    Worker& w, const std::vector<BatchEntry>& entries) {
  // Same newer-version-wins merge (and write-ahead logging) as a live
  // batch install: a pulled entry can never regress a version a
  // concurrent client write already placed here, which is exactly the
  // per-key monotonicity Lemma 8's envelope needs across the handover.
  // Entries route per key like any batch — a chunk's keys all hash to
  // one shard, but re-resolving keeps this path layout-agnostic.
  for (const BatchEntry& entry : entries) {
    const std::size_t s = ShardForKey(entry.key, shards_.size());
    Shard& sh = *shards_[s];
    NoteTouched(w, s);
    if (ApplyToImage(sh, entry.key, entry.version, entry.value)) {
      storage::WalRecord rec;
      rec.type = storage::WalRecord::Type::kWrite;
      rec.key = entry.key;
      rec.version = entry.version;
      rec.value = entry.value;
      w.wal_parts[s].push_back(std::move(rec));
    }
    sh.ops.fetch_add(1, std::memory_order_relaxed);
  }
  FlushTouched(w);
  CountBatchTotals(entries.size());
}

void ReplicaServer::WorkerLoop(std::size_t widx) {
  Worker& w = *workers_[widx];
  for (;;) {
    std::deque<Envelope> batch = w.inbox.PopAll();
    if (batch.empty()) {
      NoteThreadExit();
      return;  // inbox closed and drained
    }
    TrackPeak(w.queue_peak, batch.size());
    for (Envelope& e : batch) {
      if (e.msg.kind == RtMessage::Kind::kShutdown) {
        NoteThreadExit();
        return;
      }
      HandleOnWorker(widx, e);
    }
  }
}

}  // namespace qcnt::runtime
