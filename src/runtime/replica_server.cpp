#include "runtime/replica_server.hpp"

#include "common/check.hpp"

namespace qcnt::runtime {

ReplicaServer::ReplicaServer(Bus& bus, NodeId id)
    : ReplicaServer(bus, id, storage::MakeMemoryBackend()) {}

ReplicaServer::ReplicaServer(Bus& bus, NodeId id,
                             std::unique_ptr<storage::Backend> backend,
                             bool record_history)
    : bus_(&bus),
      id_(id),
      backend_(std::move(backend)),
      record_history_(record_history) {
  QCNT_CHECK(backend_ != nullptr);
  Start();
}

ReplicaServer::~ReplicaServer() { Shutdown(); }

void ReplicaServer::Start() {
  state_ = backend_->Recover();
  thread_ = std::thread([this] { Loop(); });
}

void ReplicaServer::Shutdown() {
  if (!thread_.joinable()) return;
  // Push directly: the bus would drop the message if this node is
  // "crashed", but shutdown must always get through.
  bus_->MailboxOf(id_).Push(
      Envelope{id_, RtMessage{RtMessage::Kind::kShutdown, 0, {}, 0, 0, 0, 0}});
  thread_.join();
  thread_ = std::thread();
}

void ReplicaServer::CrashAndWipe() {
  Shutdown();
  state_ = storage::Image{};
  history_.clear();  // volatile, dies with the node
  backend_->OnCrash();
}

void ReplicaServer::Restart() {
  if (thread_.joinable()) return;
  Start();
}

ReplicaSnapshot ReplicaServer::Peek() {
  QCNT_CHECK_MSG(Running(), "Peek() requires a running replica");
  std::unique_lock<std::mutex> lock(peek_mu_);
  const std::uint64_t want = ++peeks_requested_;
  RtMessage m;
  m.kind = RtMessage::Kind::kImagePeek;
  // Push directly (not Bus::Send): peeking is an observer's side channel
  // and must work even on a bus-partitioned node.
  bus_->MailboxOf(id_).Push(Envelope{id_, std::move(m)});
  peek_cv_.wait(lock, [&] { return peeks_served_ >= want; });
  return peek_snapshot_;
}

BatchStats ReplicaServer::BatchStats() const {
  runtime::BatchStats s;
  s.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  s.batched_ops = batched_ops_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  return s;
}

void ReplicaServer::Loop() {
  for (;;) {
    std::optional<Envelope> e = bus_->MailboxOf(id_).Pop();
    if (!e) return;                                      // mailbox closed
    if (e->msg.kind == RtMessage::Kind::kShutdown) return;
    Handle(*e);
  }
}

bool ReplicaServer::ApplyToImage(const std::string& key,
                                 std::uint64_t version, std::int64_t value) {
  storage::Versioned& v = state_.data[key];
  // (version, value) is a total order: concurrent writers that race to
  // the same version converge deterministically (the verified automaton
  // layer shows a concurrency-control layer prevents such races; the
  // runtime stays safe without one).
  if (version > v.version || (version == v.version && value >= v.value)) {
    v.version = version;
    v.value = value;
    if (record_history_) history_.push_back({key, version, value});
    return true;
  }
  return false;
}

void ReplicaServer::CountBatch(std::size_t entries) {
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  batched_ops_.fetch_add(entries, std::memory_order_relaxed);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < entries &&
         !max_batch_.compare_exchange_weak(prev, entries,
                                           std::memory_order_relaxed)) {
  }
}

void ReplicaServer::HandleBatchRead(const RtMessage& m, RtMessage& reply) {
  reply.kind = RtMessage::Kind::kBatchReadResp;
  reply.generation = state_.generation;
  reply.config_id = state_.config_id;
  reply.batch.reserve(m.batch.size());
  for (const BatchEntry& entry : m.batch) {
    const storage::Versioned& v = state_.data[entry.key];
    reply.batch.push_back(
        BatchEntry{entry.op, entry.key, v.version, v.value});
  }
  CountBatch(m.batch.size());
}

void ReplicaServer::HandleBatchWrite(const RtMessage& m, RtMessage& reply) {
  // Apply every entry to the image first, collecting the accepted ones,
  // then log them with a single batch append — one write(2), one
  // group-commit fsync decision — before the single ack below. Write-ahead
  // still holds: the ack covers exactly the records the backend accepted.
  std::vector<storage::WalRecord> accepted;
  accepted.reserve(m.batch.size());
  for (const BatchEntry& entry : m.batch) {
    if (ApplyToImage(entry.key, entry.version, entry.value)) {
      storage::WalRecord rec;
      rec.type = storage::WalRecord::Type::kWrite;
      rec.key = entry.key;
      rec.version = entry.version;
      rec.value = entry.value;
      accepted.push_back(std::move(rec));
    }
  }
  if (!accepted.empty()) {
    backend_->ApplyWriteBatch(accepted);
    backend_->MaybeCompact(state_);
  }
  reply.kind = RtMessage::Kind::kBatchWriteAck;
  reply.batch.reserve(m.batch.size());
  for (const BatchEntry& entry : m.batch) {
    reply.batch.push_back(BatchEntry{entry.op, {}, 0, 0});
  }
  CountBatch(m.batch.size());
}

void ReplicaServer::Handle(const Envelope& e) {
  const RtMessage& m = e.msg;
  RtMessage reply;
  reply.op = m.op;
  reply.key = m.key;
  switch (m.kind) {
    case RtMessage::Kind::kReadReq: {
      const storage::Versioned& v = state_.data[m.key];
      reply.kind = RtMessage::Kind::kReadResp;
      reply.version = v.version;
      reply.value = v.value;
      reply.generation = state_.generation;
      reply.config_id = state_.config_id;
      break;
    }
    case RtMessage::Kind::kWriteReq: {
      if (ApplyToImage(m.key, m.version, m.value)) {
        // Write-ahead: the record is logged (and, per fsync policy, made
        // durable) before the ack below is sent.
        backend_->ApplyWrite(m.key, m.version, m.value);
        backend_->MaybeCompact(state_);
      }
      reply.kind = RtMessage::Kind::kWriteAck;
      break;
    }
    case RtMessage::Kind::kConfigWriteReq: {
      if (m.generation >= state_.generation) {
        state_.generation = m.generation;
        state_.config_id = m.config_id;
        backend_->ApplyConfig(state_.generation, state_.config_id);
        backend_->MaybeCompact(state_);
      }
      reply.kind = RtMessage::Kind::kConfigWriteAck;
      break;
    }
    case RtMessage::Kind::kBatchReadReq:
      HandleBatchRead(m, reply);
      break;
    case RtMessage::Kind::kBatchWriteReq:
      HandleBatchWrite(m, reply);
      break;
    case RtMessage::Kind::kImagePeek: {
      std::lock_guard<std::mutex> lock(peek_mu_);
      peek_snapshot_ = ReplicaSnapshot{state_, history_};
      ++peeks_served_;
      peek_cv_.notify_all();
      return;  // side channel: no bus reply
    }
    default:
      return;
  }
  bus_->Send(id_, e.from, std::move(reply));
}

}  // namespace qcnt::runtime
