#include "runtime/replica_server.hpp"

#include "common/check.hpp"

namespace qcnt::runtime {

ReplicaServer::ReplicaServer(Bus& bus, NodeId id)
    : ReplicaServer(bus, id, storage::MakeMemoryBackend()) {}

ReplicaServer::ReplicaServer(Bus& bus, NodeId id,
                             std::unique_ptr<storage::Backend> backend)
    : bus_(&bus), id_(id), backend_(std::move(backend)) {
  QCNT_CHECK(backend_ != nullptr);
  Start();
}

ReplicaServer::~ReplicaServer() { Shutdown(); }

void ReplicaServer::Start() {
  state_ = backend_->Recover();
  thread_ = std::thread([this] { Loop(); });
}

void ReplicaServer::Shutdown() {
  if (!thread_.joinable()) return;
  // Push directly: the bus would drop the message if this node is
  // "crashed", but shutdown must always get through.
  bus_->MailboxOf(id_).Push(
      Envelope{id_, RtMessage{RtMessage::Kind::kShutdown, 0, {}, 0, 0, 0, 0}});
  thread_.join();
  thread_ = std::thread();
}

void ReplicaServer::CrashAndWipe() {
  Shutdown();
  state_ = storage::Image{};
  backend_->OnCrash();
}

void ReplicaServer::Restart() {
  if (thread_.joinable()) return;
  Start();
}

void ReplicaServer::Loop() {
  for (;;) {
    std::optional<Envelope> e = bus_->MailboxOf(id_).Pop();
    if (!e) return;                                      // mailbox closed
    if (e->msg.kind == RtMessage::Kind::kShutdown) return;
    Handle(*e);
  }
}

void ReplicaServer::Handle(const Envelope& e) {
  const RtMessage& m = e.msg;
  RtMessage reply;
  reply.op = m.op;
  reply.key = m.key;
  switch (m.kind) {
    case RtMessage::Kind::kReadReq: {
      const storage::Versioned& v = state_.data[m.key];
      reply.kind = RtMessage::Kind::kReadResp;
      reply.version = v.version;
      reply.value = v.value;
      reply.generation = state_.generation;
      reply.config_id = state_.config_id;
      break;
    }
    case RtMessage::Kind::kWriteReq: {
      storage::Versioned& v = state_.data[m.key];
      // (version, value) is a total order: concurrent writers that race to
      // the same version converge deterministically (the verified automaton
      // layer shows a concurrency-control layer prevents such races; the
      // runtime stays safe without one).
      if (m.version > v.version ||
          (m.version == v.version && m.value >= v.value)) {
        v.version = m.version;
        v.value = m.value;
        // Write-ahead: the record is logged (and, per fsync policy, made
        // durable) before the ack below is sent.
        backend_->ApplyWrite(m.key, v.version, v.value);
        backend_->MaybeCompact(state_);
      }
      reply.kind = RtMessage::Kind::kWriteAck;
      break;
    }
    case RtMessage::Kind::kConfigWriteReq: {
      if (m.generation >= state_.generation) {
        state_.generation = m.generation;
        state_.config_id = m.config_id;
        backend_->ApplyConfig(state_.generation, state_.config_id);
        backend_->MaybeCompact(state_);
      }
      reply.kind = RtMessage::Kind::kConfigWriteAck;
      break;
    }
    default:
      return;
  }
  bus_->Send(id_, e.from, std::move(reply));
}

}  // namespace qcnt::runtime
