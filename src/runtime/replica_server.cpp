#include "runtime/replica_server.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "runtime/sharding.hpp"

namespace qcnt::runtime {

namespace {
/// Default (and ceiling-guarded) entries per catchup chunk. Bounded
/// chunks are the point: the donor never materializes more than one
/// chunk, and the joiner applies chunk k before chunk k+1 is requested,
/// so live traffic interleaves at chunk granularity.
constexpr std::size_t kCatchupChunkEntries = 128;
constexpr std::size_t kCatchupChunkCeiling = 4096;
}  // namespace

ReplicaServer::ReplicaServer(Transport& transport, NodeId id)
    : ReplicaServer(transport, id, 1, [](std::size_t) {
        return storage::MakeMemoryBackend();
      }) {}

ReplicaServer::ReplicaServer(Transport& transport, NodeId id,
                             const std::size_t shards,
                             const BackendFactory& make_backend,
                             bool record_history)
    : transport_(&transport), id_(id), record_history_(record_history) {
  QCNT_CHECK(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->backend = make_backend(s);
    QCNT_CHECK(shard->backend != nullptr);
    shards_.push_back(std::move(shard));
  }
  // The hook makes Bus::Crash atomic across shards: it drains every shard
  // sub-mailbox and aborts a pending config barrier, inside Crash itself.
  transport_->SetCrashHook(id_, [this] { OnBusCrash(); });
  Start();
}

ReplicaServer::~ReplicaServer() {
  Shutdown();
  transport_->SetCrashHook(id_, nullptr);
}

void ReplicaServer::Start() {
  for (auto& sh : shards_) {
    sh->inbox.Clear();  // drop anything queued across a crash/restart
    sh->image = sh->backend->Recover();
  }
  if (Multi()) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->thread = std::thread([this, s] { ShardLoop(s); });
    }
    thread_ = std::thread([this] { DispatchLoop(); });
  } else {
    thread_ = std::thread([this] { SingleLoop(); });
  }
}

void ReplicaServer::Shutdown() {
  if (!thread_.joinable()) return;
  // Push directly: the bus would drop the message if this node is
  // "crashed", but shutdown must always get through. The dispatch loop
  // forwards the shutdown to every shard before exiting.
  RtMessage m;
  m.kind = RtMessage::Kind::kShutdown;
  transport_->MailboxOf(id_).Push(Envelope{id_, std::move(m)});
  thread_.join();
  thread_ = std::thread();
  for (auto& sh : shards_) {
    if (sh->thread.joinable()) {
      sh->thread.join();
      sh->thread = std::thread();
    }
  }
}

void ReplicaServer::StopShards() {
  for (auto& sh : shards_) {
    RtMessage m;
    m.kind = RtMessage::Kind::kShutdown;
    sh->inbox.Push(Envelope{id_, std::move(m)});
  }
}

void ReplicaServer::OnBusCrash() {
  // Runs inside Bus::Crash, after up_ flipped and the bus mailbox was
  // drained. Draining the shard inboxes here closes the window where a
  // shard could still be working through a pre-crash backlog; waking the
  // barrier lets the dispatch thread observe the crash instead of waiting
  // for config applications that were just discarded.
  for (auto& sh : shards_) sh->inbox.Clear();
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
  }
  barrier_cv_.notify_all();
}

void ReplicaServer::CrashAndWipe() {
  Shutdown();
  join_ = JoinState{};  // a pull in progress dies with the node
  for (auto& sh : shards_) {
    sh->image = storage::Image{};
    sh->history.clear();  // volatile, dies with the node
    sh->backend->OnCrash();
  }
}

void ReplicaServer::Restart() {
  if (thread_.joinable()) return;
  Start();
}

ReplicaSnapshot ReplicaServer::Peek() {
  QCNT_CHECK_MSG(Running(), "Peek() requires a running replica");
  std::lock_guard<std::mutex> call(peek_call_mu_);
  std::unique_lock<std::mutex> lock(peek_mu_);
  const std::uint64_t epoch = ++peek_epoch_;
  peek_slots_.assign(shards_.size(), ReplicaSnapshot{});
  peek_filled_.assign(shards_.size(), 0);
  peek_served_ = 0;
  const auto push_request = [&] {
    RtMessage m;
    m.kind = RtMessage::Kind::kImagePeek;
    m.generation = epoch;
    // Push directly (not Bus::Send): peeking is an observer's side channel
    // and must work even on a bus-partitioned node.
    transport_->MailboxOf(id_).Push(Envelope{id_, std::move(m)});
  };
  push_request();
  while (peek_served_ < shards_.size()) {
    // A concurrent Bus::Crash can clear an in-flight peek out of the shard
    // inboxes; retry with the same epoch (filled flags dedup) until every
    // shard has answered.
    if (!peek_cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
          return peek_served_ >= shards_.size();
        })) {
      push_request();
    }
  }
  ReplicaSnapshot out;
  for (ReplicaSnapshot& slot : peek_slots_) {
    // Shard images are key-disjoint; the stamp merge takes the newest.
    for (auto& [key, v] : slot.image.data) {
      out.image.data.emplace(key, v);
    }
    out.image.ApplyConfig(slot.image.generation, slot.image.config_id);
    out.history.insert(out.history.end(),
                       std::make_move_iterator(slot.history.begin()),
                       std::make_move_iterator(slot.history.end()));
  }
  out.stats = BatchStats();
  return out;
}

void ReplicaServer::ServePeek(std::size_t idx, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(peek_mu_);
  if (epoch != peek_epoch_ || idx >= peek_filled_.size() ||
      peek_filled_[idx]) {
    return;  // stale epoch or a retry already served by this shard
  }
  Shard& sh = *shards_[idx];
  peek_slots_[idx].image = sh.image;
  peek_slots_[idx].history = sh.history;
  peek_filled_[idx] = 1;
  ++peek_served_;
  peek_cv_.notify_all();
}

std::vector<ShardCounters> ReplicaServer::CollectShardCounters() const {
  std::vector<ShardCounters> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardCounters c;
    c.ops = sh->ops.load(std::memory_order_relaxed);
    c.batches = sh->batches.load(std::memory_order_relaxed);
    c.fsyncs = sh->backend->Stats().fsyncs;
    c.queue_peak = sh->queue_peak.load(std::memory_order_relaxed);
    out.push_back(c);
  }
  return out;
}

storage::StorageStats ReplicaServer::StorageStats() const {
  storage::StorageStats total;
  for (const auto& sh : shards_) total += sh->backend->Stats();
  return total;
}

BatchStats ReplicaServer::BatchStats() const {
  runtime::BatchStats s;
  s.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  s.batched_ops = batched_ops_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.per_shard = CollectShardCounters();
  return s;
}

void ReplicaServer::SingleLoop() {
  Shard& sh = *shards_[0];
  Mailbox& mailbox = transport_->MailboxOf(id_);
  for (;;) {
    std::deque<Envelope> batch = mailbox.PopAll();
    if (batch.empty()) return;  // mailbox closed and drained
    TrackPeak(sh.queue_peak, batch.size());
    for (Envelope& e : batch) {
      if (e.msg.kind == RtMessage::Kind::kShutdown) return;
      HandleOnShard(0, e);
    }
  }
}

void ReplicaServer::DispatchLoop() {
  Mailbox& mailbox = transport_->MailboxOf(id_);
  for (;;) {
    std::deque<Envelope> batch = mailbox.PopAll();
    if (batch.empty()) {
      StopShards();  // mailbox closed and drained
      return;
    }
    for (Envelope& e : batch) {
      if (e.msg.kind == RtMessage::Kind::kShutdown) {
        StopShards();
        return;
      }
      Route(std::move(e));
    }
  }
}

void ReplicaServer::Route(Envelope e) {
  switch (e.msg.kind) {
    case RtMessage::Kind::kImagePeek:
      // Internal side channel: fan to every shard regardless of up/down.
      for (auto& sh : shards_) {
        sh->inbox.Push(Envelope{e.from, e.msg});
      }
      return;
    case RtMessage::Kind::kConfigWriteReq:
      if (!transport_->IsUp(id_)) return;
      BroadcastConfigAndAck(e);
      return;
    case RtMessage::Kind::kBatchReadReq:
    case RtMessage::Kind::kBatchWriteReq:
      // A message popped just before a crash must not reach a shard after
      // the crash hook drained the shard inboxes; dropping here narrows
      // that window (the up-check in Bus::Send keeps replies from escaping
      // in any case).
      if (!transport_->IsUp(id_)) return;
      SplitBatch(std::move(e));
      return;
    case RtMessage::Kind::kReadReq:
    case RtMessage::Kind::kWriteReq: {
      if (!transport_->IsUp(id_)) return;
      const std::size_t s = ShardForKey(e.msg.key, shards_.size());
      shards_[s]->inbox.Push(std::move(e));
      return;
    }
    case RtMessage::Kind::kCatchupReq: {
      // Donor side: `version` names the shard to scan. A request beyond
      // this replica's layout is answered with an empty chunk whose shard
      // count exposes the mismatch (the puller refuses the join).
      if (!transport_->IsUp(id_)) return;
      if (e.msg.version < shards_.size()) {
        shards_[e.msg.version]->inbox.Push(std::move(e));
      } else {
        RtMessage refusal;
        refusal.kind = RtMessage::Kind::kCatchupChunk;
        refusal.op = e.msg.op;
        refusal.version = shards_.size();
        transport_->Send(id_, e.from, std::move(refusal));
      }
      return;
    }
    case RtMessage::Kind::kJoinReq:
      if (!transport_->IsUp(id_)) return;
      HandleJoinReq(e);
      return;
    case RtMessage::Kind::kCatchupChunk:
      if (!transport_->IsUp(id_)) return;
      HandleJoinChunk(e);
      return;
    default:
      return;
  }
}

void ReplicaServer::SplitBatch(Envelope e) {
  std::vector<std::vector<BatchEntry>> parts(shards_.size());
  for (BatchEntry& entry : e.msg.batch) {
    parts[ShardForKey(entry.key, shards_.size())].push_back(
        std::move(entry));
  }
  for (std::size_t s = 0; s < parts.size(); ++s) {
    if (parts[s].empty()) continue;
    RtMessage m;
    m.kind = e.msg.kind;
    m.op = e.msg.op;
    // The stamp must ride on every sub-batch: the per-shard generation
    // fence compares against it, and stripping it here would make every
    // shard fence all batch installs once any reconfiguration bumped the
    // store past generation zero.
    m.generation = e.msg.generation;
    m.config_id = e.msg.config_id;
    m.batch = std::move(parts[s]);
    shards_[s]->inbox.Push(Envelope{e.from, std::move(m)});
  }
}

void ReplicaServer::BroadcastConfigAndAck(const Envelope& e) {
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    epoch = ++barrier_epoch_;
    barrier_pending_ = shards_.size();
  }
  for (auto& sh : shards_) {
    RtMessage m = e.msg;
    m.value = static_cast<std::int64_t>(epoch);  // barrier epoch
    sh->inbox.Push(Envelope{e.from, std::move(m)});
  }
  {
    std::unique_lock<std::mutex> lock(barrier_mu_);
    barrier_cv_.wait(lock, [&] {
      return barrier_pending_ == 0 || !transport_->IsUp(id_);
    });
    // Crashed mid-barrier: the hook drained the shard inboxes, so some
    // shards may never apply this config. No ack escapes (the node is
    // down); an unacked reconfiguration carries no guarantee.
    if (barrier_pending_ != 0) return;
  }
  RtMessage ack;
  ack.kind = RtMessage::Kind::kConfigWriteAck;
  ack.op = e.msg.op;
  transport_->Send(id_, e.from, std::move(ack));
}

bool ReplicaServer::ApplyToImage(Shard& sh, const std::string& key,
                                 std::uint64_t version, std::int64_t value) {
  storage::Versioned& v = sh.image.data[key];
  // (version, value) is a total order: concurrent writers that race to
  // the same version converge deterministically (the verified automaton
  // layer shows a concurrency-control layer prevents such races; the
  // runtime stays safe without one). Strictly-greater on the value leg
  // makes the apply idempotent: a re-delivered copy of an already-held
  // (version, value) is a no-op — no duplicate history entry, and (in the
  // batch path) no duplicate WAL record — while still being acked, which
  // is what lets a lossy/duplicating bus retry writes safely.
  if (version > v.version || (version == v.version && value > v.value)) {
    v.version = version;
    v.value = value;
    if (record_history_) sh.history.push_back({key, version, value});
    return true;
  }
  return false;
}

void ReplicaServer::TrackPeak(std::atomic<std::uint64_t>& peak,
                              std::uint64_t v) {
  std::uint64_t prev = peak.load(std::memory_order_relaxed);
  while (prev < v && !peak.compare_exchange_weak(prev, v,
                                                 std::memory_order_relaxed)) {
  }
}

void ReplicaServer::CountBatch(Shard& sh, std::size_t entries) {
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  batched_ops_.fetch_add(entries, std::memory_order_relaxed);
  TrackPeak(max_batch_, entries);
  sh.batches.fetch_add(1, std::memory_order_relaxed);
  sh.ops.fetch_add(entries, std::memory_order_relaxed);
}

void ReplicaServer::HandleBatchRead(Shard& sh, const RtMessage& m,
                                    RtMessage& reply) {
  reply.kind = RtMessage::Kind::kBatchReadResp;
  reply.generation = sh.image.generation;
  reply.config_id = sh.image.config_id;
  reply.batch.reserve(m.batch.size());
  for (const BatchEntry& entry : m.batch) {
    const storage::Versioned& v = sh.image.data[entry.key];
    reply.batch.push_back(
        BatchEntry{entry.op, entry.key, v.version, v.value});
  }
  CountBatch(sh, m.batch.size());
}

void ReplicaServer::HandleBatchWrite(Shard& sh, const RtMessage& m,
                                     RtMessage& reply) {
  reply.kind = RtMessage::Kind::kBatchWriteAck;
  reply.generation = sh.image.generation;
  reply.config_id = sh.image.config_id;
  // One generation rides on the whole batch, so the fence decision is
  // batch-wide: refused entries ack with value = 1 (NACK) and the header
  // above teaches the client the configuration that fenced it.
  const bool fenced = m.generation < sh.image.generation;
  if (!fenced) {
    // Apply every entry to the image first, collecting the accepted ones,
    // then log them with a single batch append — one write(2), one
    // group-commit fsync decision — before the single ack below.
    // Write-ahead still holds: the ack covers exactly the records the
    // backend accepted.
    std::vector<storage::WalRecord> accepted;
    accepted.reserve(m.batch.size());
    for (const BatchEntry& entry : m.batch) {
      if (ApplyToImage(sh, entry.key, entry.version, entry.value)) {
        storage::WalRecord rec;
        rec.type = storage::WalRecord::Type::kWrite;
        rec.key = entry.key;
        rec.version = entry.version;
        rec.value = entry.value;
        accepted.push_back(std::move(rec));
      }
    }
    if (!accepted.empty()) {
      sh.backend->ApplyWriteBatch(accepted);
      sh.backend->MaybeCompact(sh.image);
    }
  }
  reply.batch.reserve(m.batch.size());
  for (const BatchEntry& entry : m.batch) {
    reply.batch.push_back(BatchEntry{entry.op, {}, 0, fenced ? 1 : 0});
  }
  CountBatch(sh, m.batch.size());
}

void ReplicaServer::HandleOnShard(std::size_t idx, Envelope& e) {
  Shard& sh = *shards_[idx];
  const RtMessage& m = e.msg;
  RtMessage reply;
  reply.op = m.op;
  reply.key = m.key;
  switch (m.kind) {
    case RtMessage::Kind::kReadReq: {
      const storage::Versioned& v = sh.image.data[m.key];
      reply.kind = RtMessage::Kind::kReadResp;
      reply.version = v.version;
      reply.value = v.value;
      reply.generation = sh.image.generation;
      reply.config_id = sh.image.config_id;
      sh.ops.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case RtMessage::Kind::kWriteReq: {
      reply.kind = RtMessage::Kind::kWriteAck;
      // The ack names this replica's stamp either way — the channel that
      // tells a lagging client the membership changed underneath it.
      reply.generation = sh.image.generation;
      reply.config_id = sh.image.config_id;
      if (m.generation < sh.image.generation) {
        // Generation fence: an install staged under an older generation
        // is refused (value = 1 marks the NACK). This is what guarantees
        // that once a configuration stamp is acked, no write can complete
        // under the old generation purely on fenced replicas — the seal
        // pass of a membership change (DESIGN.md §11) relies on it.
        reply.value = 1;
      } else if (ApplyToImage(sh, m.key, m.version, m.value)) {
        // Write-ahead: the record is logged (and, per fsync policy, made
        // durable) before the ack below is sent.
        sh.backend->ApplyWrite(m.key, m.version, m.value);
        sh.backend->MaybeCompact(sh.image);
      }
      sh.ops.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case RtMessage::Kind::kConfigWriteReq: {
      // Stamps order by (generation, config_id) — config ids are append-
      // ordered, so an equal-generation install of a newer configuration
      // (an orphaned stamp from a timed-out reconfigure attempt colliding
      // with the attempt that won) supersedes, while a duplicated install
      // stays a no-op (no re-log), mirroring ApplyToImage's idempotence.
      if (m.generation > sh.image.generation ||
          (m.generation == sh.image.generation &&
           m.config_id > sh.image.config_id)) {
        sh.image.generation = m.generation;
        sh.image.config_id = m.config_id;
        sh.backend->ApplyConfig(sh.image.generation, sh.image.config_id);
        sh.backend->MaybeCompact(sh.image);
      }
      sh.ops.fetch_add(1, std::memory_order_relaxed);
      if (Multi()) {
        // Barrier leg: the dispatch thread acks once every shard has
        // applied + logged the stamp (m.value carries the epoch).
        std::lock_guard<std::mutex> lock(barrier_mu_);
        if (static_cast<std::uint64_t>(m.value) == barrier_epoch_ &&
            barrier_pending_ > 0 && --barrier_pending_ == 0) {
          barrier_cv_.notify_all();
        }
        return;
      }
      reply.kind = RtMessage::Kind::kConfigWriteAck;
      break;
    }
    case RtMessage::Kind::kBatchReadReq:
      HandleBatchRead(sh, m, reply);
      break;
    case RtMessage::Kind::kBatchWriteReq:
      HandleBatchWrite(sh, m, reply);
      break;
    case RtMessage::Kind::kImagePeek:
      ServePeek(idx, m.generation);
      return;  // side channel: no bus reply
    case RtMessage::Kind::kCatchupReq:
      ServeCatchup(idx, e);
      return;  // replies itself
    case RtMessage::Kind::kJoinReq:
      // Single-shard mode only: the sole worker runs the join state
      // machine directly (multi-shard replicas handle this on dispatch).
      HandleJoinReq(e);
      return;
    case RtMessage::Kind::kCatchupChunk:
      if (Multi()) {
        // Forwarded by the dispatch-side join machinery: just merge.
        ApplyCatchupEntries(sh, m.batch);
      } else {
        HandleJoinChunk(e);
      }
      return;
    default:
      return;
  }
  transport_->Send(id_, e.from, std::move(reply));
}

void ReplicaServer::ServeCatchup(std::size_t idx, Envelope& e) {
  Shard& sh = *shards_[idx];
  const RtMessage& m = e.msg;
  RtMessage reply;
  reply.kind = RtMessage::Kind::kCatchupChunk;
  reply.op = m.op;
  reply.version = shards_.size();  // layout check on the puller side
  reply.generation = sh.image.generation;
  reply.config_id = sh.image.config_id;
  const std::size_t limit =
      m.value > 0 && static_cast<std::uint64_t>(m.value) <= kCatchupChunkCeiling
          ? static_cast<std::size_t>(m.value)
          : kCatchupChunkEntries;
  // Select the `limit` smallest keys strictly beyond the cursor (an empty
  // cursor starts the shard; the empty key itself, if present, rides in
  // the first chunk — re-sending it on a resume is a harmless idempotent
  // merge). The image is hash-ordered, so this is O(shard keys) per
  // chunk; it runs on the shard's own thread, between live writes.
  std::vector<const std::pair<const std::string, storage::Versioned>*> cand;
  cand.reserve(sh.image.data.size());
  for (const auto& kv : sh.image.data) {
    if (m.key.empty() || kv.first > m.key) cand.push_back(&kv);
  }
  const bool more = cand.size() > limit;
  const auto by_key = [](const auto* a, const auto* b) {
    return a->first < b->first;
  };
  if (more) {
    std::partial_sort(cand.begin(),
                      cand.begin() + static_cast<std::ptrdiff_t>(limit),
                      cand.end(), by_key);
    cand.resize(limit);
  } else {
    std::sort(cand.begin(), cand.end(), by_key);
  }
  reply.batch.reserve(cand.size());
  for (const auto* kv : cand) {
    reply.batch.push_back(
        BatchEntry{0, kv->first, kv->second.version, kv->second.value});
  }
  if (!cand.empty()) reply.key = cand.back()->first;  // next cursor
  reply.value = more ? 1 : 0;
  sh.ops.fetch_add(1, std::memory_order_relaxed);
  transport_->Send(id_, e.from, std::move(reply));
}

void ReplicaServer::SendCatchupReq() {
  RtMessage req;
  req.kind = RtMessage::Kind::kCatchupReq;
  req.op = ++join_.pull_seq;  // invalidates any in-flight stale chunk
  req.key = join_.cursor;
  req.version = join_.shard;
  req.value = static_cast<std::int64_t>(kCatchupChunkEntries);
  transport_->Send(id_, join_.donor, std::move(req));
}

void ReplicaServer::HandleJoinReq(const Envelope& e) {
  const RtMessage& m = e.msg;
  // Same expected layout → resume from (shard, cursor): this is the
  // donor-crash recovery path — the coordinator re-issues the join with
  // the same or a different donor, and the stream continues where it
  // stopped (shard layouts agree, so cursors transfer between donors).
  if (!join_.active ||
      join_.expected_shards != m.version) {
    // pull_seq survives the reset: it must stay monotone against chunks
    // still in flight from an abandoned stream.
    const std::uint64_t seq = join_.pull_seq;
    join_ = JoinState{};
    join_.pull_seq = seq;
    join_.expected_shards = m.version;
  }
  join_.active = true;
  join_.op = m.op;
  join_.donor = static_cast<NodeId>(m.value);
  join_.coordinator = e.from;
  if (join_.shard >= join_.expected_shards) {
    // Nothing left to pull (a done report the coordinator missed).
    RtMessage done;
    done.kind = RtMessage::Kind::kCatchupDone;
    done.op = join_.op;
    done.value = kJoinOk;
    done.version = join_.entries;
    transport_->Send(id_, join_.coordinator, std::move(done));
    join_ = JoinState{};
    return;
  }
  SendCatchupReq();
}

void ReplicaServer::HandleJoinChunk(Envelope& e) {
  RtMessage& m = e.msg;
  // Accept only the answer to the latest outstanding request: duplicates
  // and stale-stream chunks (older pull_seq) are dropped, so a duplicated
  // final chunk can never double-increment the shard counter and skip a
  // shard's remainder.
  if (!join_.active || m.op != join_.pull_seq) return;
  if (m.version != join_.expected_shards) {
    // Shard-layout mismatch: a shard-by-shard stream would land keys on
    // the wrong worker (and the wrong WAL segment). Refuse the join with
    // a typed error; nothing already merged needs undoing (it is all
    // legitimate replicated state).
    RtMessage done;
    done.kind = RtMessage::Kind::kCatchupDone;
    done.op = join_.op;
    done.value = kJoinErrShardMismatch;
    done.version = join_.entries;
    transport_->Send(id_, join_.coordinator, std::move(done));
    join_ = JoinState{};
    return;
  }
  join_.entries += m.batch.size();
  const std::uint32_t shard = join_.shard;
  const bool more = m.value != 0;
  if (!m.batch.empty()) join_.cursor = m.key;
  if (!more) {
    ++join_.shard;
    join_.cursor.clear();
  }
  if (!m.batch.empty()) {
    if (Multi()) {
      // Hand the entries to the owning worker; chunk k is queued before
      // chunk k+1 is requested below, so per-shard order is preserved and
      // at most one chunk is ever in flight.
      RtMessage apply;
      apply.kind = RtMessage::Kind::kCatchupChunk;
      apply.batch = std::move(m.batch);
      shards_[shard]->inbox.Push(Envelope{e.from, std::move(apply)});
    } else {
      ApplyCatchupEntries(*shards_[0], m.batch);
    }
  }
  if (join_.shard >= join_.expected_shards) {
    RtMessage done;
    done.kind = RtMessage::Kind::kCatchupDone;
    done.op = join_.op;
    done.value = kJoinOk;
    done.version = join_.entries;
    transport_->Send(id_, join_.coordinator, std::move(done));
    join_ = JoinState{};
    return;
  }
  SendCatchupReq();
}

void ReplicaServer::ApplyCatchupEntries(
    Shard& sh, const std::vector<BatchEntry>& entries) {
  // Same newer-version-wins merge (and write-ahead logging) as a live
  // batch install: a pulled entry can never regress a version a
  // concurrent client write already placed here, which is exactly the
  // per-key monotonicity Lemma 8's envelope needs across the handover.
  std::vector<storage::WalRecord> accepted;
  accepted.reserve(entries.size());
  for (const BatchEntry& entry : entries) {
    if (ApplyToImage(sh, entry.key, entry.version, entry.value)) {
      storage::WalRecord rec;
      rec.type = storage::WalRecord::Type::kWrite;
      rec.key = entry.key;
      rec.version = entry.version;
      rec.value = entry.value;
      accepted.push_back(std::move(rec));
    }
  }
  if (!accepted.empty()) {
    sh.backend->ApplyWriteBatch(accepted);
    sh.backend->MaybeCompact(sh.image);
  }
  CountBatch(sh, entries.size());
}

void ReplicaServer::ShardLoop(std::size_t idx) {
  Shard& sh = *shards_[idx];
  for (;;) {
    std::deque<Envelope> batch = sh.inbox.PopAll();
    TrackPeak(sh.queue_peak, batch.size());
    for (Envelope& e : batch) {
      if (e.msg.kind == RtMessage::Kind::kShutdown) return;
      HandleOnShard(idx, e);
    }
  }
}

}  // namespace qcnt::runtime
