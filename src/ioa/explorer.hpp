// Randomized execution driver.
//
// The paper's automata are deliberately nondeterministic: a read-TM "simply
// invokes any number of accesses to any of the DMs until it happens to
// notice" a read quorum. The Explorer resolves that nondeterminism with a
// seeded RNG: at every step it enumerates the enabled output actions of the
// whole composition, picks one (optionally under a caller-supplied weight),
// applies it, and records it. Exploration ends at quiescence (no enabled
// output) or a step bound. Because the seed fully determines the run, every
// randomized test and bench is reproducible.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "ioa/execution.hpp"

namespace qcnt::ioa {

struct ExploreOptions {
  /// Hard bound on the number of steps taken.
  std::size_t max_steps = 100000;
  /// Optional weight for biasing choice among enabled outputs; actions with
  /// weight <= 0 are never chosen. Default: uniform.
  std::function<double(const Action&)> weight;
  /// Optional per-step observer (invariant checking hooks).
  std::function<void(const Action&, const System&)> observer;
};

struct ExploreResult {
  Schedule schedule;
  /// True when exploration stopped because no output was enabled.
  bool quiescent = false;
};

/// Run sys (Reset() first) under the given RNG until quiescence or the step
/// bound, returning the schedule taken.
ExploreResult Explore(System& sys, Rng& rng, const ExploreOptions& options);

/// Explore with default options and a fresh RNG from seed.
ExploreResult Explore(System& sys, std::uint64_t seed);

}  // namespace qcnt::ioa
