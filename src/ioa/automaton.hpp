// The I/O automaton interface (Lynch–Merritt / Lynch–Tuttle, Section 2.1).
//
// An automaton has disjoint sets of input and output operations and a
// transition relation over (state, operation, state) triples. We expose the
// model through four queries:
//
//   IsOperation(a) — is a an operation of this automaton (input or output)?
//   IsOutput(a)    — is a an output operation of this automaton?
//   Enabled(a)     — is a enabled in the current state? The paper's Input
//                    Condition requires inputs to be enabled in every state,
//                    so Enabled must return true whenever IsOperation(a) and
//                    !IsOutput(a).
//   Apply(a)       — take the step (postconditions). For inputs this must
//                    succeed from any state.
//
// Every automaton we define explicitly is *state-deterministic* (unique
// start state, at most one post-state per (state, operation)), so the state
// after a schedule is a function of the schedule and replays are exact.
// EnabledOutputs enumerates the currently enabled output actions so that a
// driver (ioa::Explorer) can resolve the model's nondeterminism with a
// seeded RNG — mirroring the paper's deliberately loose automata.
#pragma once

#include <string>
#include <vector>

#include "ioa/action.hpp"

namespace qcnt::ioa {

class Automaton {
 public:
  virtual ~Automaton() = default;

  /// Diagnostic name, e.g. "read-TM(T7,x0)".
  virtual std::string Name() const = 0;

  /// Is a an operation (input or output) of this automaton?
  virtual bool IsOperation(const Action& a) const = 0;

  /// Is a an output operation of this automaton?
  virtual bool IsOutput(const Action& a) const = 0;

  /// Is a enabled in the current state? Must be true for all inputs.
  virtual bool Enabled(const Action& a) const = 0;

  /// Take the step. Precondition: IsOperation(a) and Enabled(a).
  virtual void Apply(const Action& a) = 0;

  /// Append every currently enabled output action to out. Enumeration must
  /// be finite; for value-parameterized operations the automaton emits only
  /// the value choices its preconditions allow.
  virtual void EnabledOutputs(std::vector<Action>& out) const = 0;

  /// Return to the unique start state.
  virtual void Reset() = 0;
};

}  // namespace qcnt::ioa
