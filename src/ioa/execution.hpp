// Executions, schedules, projection, and replay (Section 2.1).
//
// Projection (β|A, "β restricted to A") extracts the subsequence of a
// schedule consisting of the operations of one automaton or of an arbitrary
// predicate; Theorem 10's construction is exactly a projection that deletes
// all replica-access operations.
//
// Replay validates that a candidate operation sequence is a schedule of a
// (state-deterministic) system: starting from the start state, each action
// must be an operation of the system and, when it is an output of the
// composition, must be enabled at its owner. This is the mechanized form of
// "α is a schedule of A" in the proof of Theorem 10.
#pragma once

#include <functional>
#include <string>

#include "ioa/system.hpp"

namespace qcnt::ioa {

/// Keep only the actions for which keep(a) is true, preserving order.
Schedule Project(const Schedule& s,
                 const std::function<bool(const Action&)>& keep);

/// β|A: the subsequence of s consisting of the operations of a.
Schedule ProjectToAutomaton(const Schedule& s, const Automaton& a);

struct ReplayResult {
  bool ok = true;
  /// Index of the first illegal action when !ok.
  std::size_t failed_index = 0;
  std::string message;
};

/// Drive sys (which is Reset() first) through s, validating each step.
/// On success the system is left in the state after s.
ReplayResult Replay(System& sys, const Schedule& s);

}  // namespace qcnt::ioa
