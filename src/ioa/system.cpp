#include "ioa/system.hpp"

#include "common/check.hpp"

namespace qcnt::ioa {

void System::Add(std::unique_ptr<Automaton> component) {
  QCNT_CHECK(component != nullptr);
  components_.push_back(std::move(component));
}

const Automaton* System::OutputOwner(const Action& a) const {
  const Automaton* owner = nullptr;
  for (const auto& c : components_) {
    if (c->IsOutput(a)) {
      QCNT_CHECK_MSG(owner == nullptr,
                     "output sets of composed automata must be disjoint: " +
                         ToString(a) + " claimed by " + owner->Name() +
                         " and " + c->Name());
      owner = c.get();
    }
  }
  return owner;
}

bool System::IsOperation(const Action& a) const {
  for (const auto& c : components_) {
    if (c->IsOperation(a)) return true;
  }
  return false;
}

bool System::IsOutput(const Action& a) const {
  return OutputOwner(a) != nullptr;
}

bool System::Enabled(const Action& a) const {
  // An output of the composition is enabled iff its owner enables it; an
  // input of the composition is always enabled (Input Condition).
  const Automaton* owner = OutputOwner(a);
  return owner == nullptr || owner->Enabled(a);
}

void System::Apply(const Action& a) {
  // Each component that has the operation carries it out; the remainder
  // stay in the same state.
  for (const auto& c : components_) {
    if (c->IsOperation(a)) c->Apply(a);
  }
}

void System::EnabledOutputs(std::vector<Action>& out) const {
  for (const auto& c : components_) c->EnabledOutputs(out);
}

void System::Reset() {
  for (const auto& c : components_) c->Reset();
}

}  // namespace qcnt::ioa
