#include "ioa/explorer.hpp"

#include "common/check.hpp"

namespace qcnt::ioa {

ExploreResult Explore(System& sys, Rng& rng, const ExploreOptions& options) {
  sys.Reset();
  ExploreResult result;
  std::vector<Action> candidates;
  std::vector<double> weights;
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    candidates.clear();
    sys.EnabledOutputs(candidates);
    if (candidates.empty()) {
      result.quiescent = true;
      break;
    }

    std::size_t pick;
    if (options.weight) {
      weights.clear();
      weights.reserve(candidates.size());
      double total = 0.0;
      for (const Action& a : candidates) {
        double w = options.weight(a);
        if (w < 0.0) w = 0.0;
        total += w;
        weights.push_back(total);
      }
      if (total <= 0.0) {
        result.quiescent = true;  // every enabled action suppressed
        break;
      }
      const double r = rng.NextDouble() * total;
      pick = 0;
      while (pick + 1 < weights.size() && weights[pick] <= r) ++pick;
    } else {
      pick = rng.Index(candidates.size());
    }

    const Action chosen = candidates[pick];
    QCNT_DCHECK(sys.Enabled(chosen));
    sys.Apply(chosen);
    result.schedule.push_back(chosen);
    if (options.observer) options.observer(chosen, sys);
  }
  return result;
}

ExploreResult Explore(System& sys, std::uint64_t seed) {
  Rng rng(seed);
  return Explore(sys, rng, ExploreOptions{});
}

}  // namespace qcnt::ioa
