// Operations (actions) of nested transaction systems.
//
// Section 2.2 of the paper fixes five operation families shared by every
// automaton in a serial system:
//
//   REQUEST-CREATE(T)    — output of parent(T): ask to create child T
//   CREATE(T)            — output of the scheduler: wake T up
//   REQUEST-COMMIT(T,v)  — output of T: announce completion with value v
//   COMMIT(T,v)          — output of the scheduler: report success to parent
//   ABORT(T)             — output of the scheduler: report failure to parent
//
// An Action is a plain value (kind, transaction, value) with exact equality;
// schedules are sequences of Actions, and Theorem 10's "looks the same to
// the user transactions" is literal equality of projected schedules.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/value.hpp"

namespace qcnt::ioa {

enum class ActionKind : std::uint8_t {
  kRequestCreate,
  kCreate,
  kRequestCommit,
  kCommit,
  kAbort,
};

/// Stable short name ("REQUEST-CREATE", ...).
const char* KindName(ActionKind kind);

struct Action {
  ActionKind kind{ActionKind::kCreate};
  TxnId txn{kNoTxn};
  /// Meaningful only for kRequestCommit and kCommit; kNil otherwise.
  Value value{kNil};

  friend bool operator==(const Action&, const Action&) = default;
};

inline Action RequestCreate(TxnId t) {
  return Action{ActionKind::kRequestCreate, t, kNil};
}
inline Action Create(TxnId t) { return Action{ActionKind::kCreate, t, kNil}; }
inline Action RequestCommit(TxnId t, Value v) {
  return Action{ActionKind::kRequestCommit, t, std::move(v)};
}
inline Action Commit(TxnId t, Value v) {
  return Action{ActionKind::kCommit, t, std::move(v)};
}
inline Action Abort(TxnId t) { return Action{ActionKind::kAbort, t, kNil}; }

/// True for COMMIT(T,v) and ABORT(T) — the paper's "return operations".
inline bool IsReturnOperation(const Action& a) {
  return a.kind == ActionKind::kCommit || a.kind == ActionKind::kAbort;
}

/// Render as e.g. "COMMIT(T17, (vn=3,42))".
std::string ToString(const Action& a);

/// A schedule: the operation subsequence of an execution.
using Schedule = std::vector<Action>;

/// Render a schedule one action per line (diagnostics).
std::string ToString(const Schedule& s);

}  // namespace qcnt::ioa
