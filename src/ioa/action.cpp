#include "ioa/action.hpp"

#include <sstream>

namespace qcnt::ioa {

const char* KindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kRequestCreate:
      return "REQUEST-CREATE";
    case ActionKind::kCreate:
      return "CREATE";
    case ActionKind::kRequestCommit:
      return "REQUEST-COMMIT";
    case ActionKind::kCommit:
      return "COMMIT";
    case ActionKind::kAbort:
      return "ABORT";
  }
  return "?";
}

std::string ToString(const Action& a) {
  std::ostringstream os;
  os << KindName(a.kind) << "(T" << a.txn;
  if (a.kind == ActionKind::kRequestCommit ||
      a.kind == ActionKind::kCommit) {
    os << ", " << qcnt::ToString(a.value);
  }
  os << ')';
  return os.str();
}

std::string ToString(const Schedule& s) {
  std::ostringstream os;
  for (std::size_t i = 0; i < s.size(); ++i) {
    os << i << ": " << ToString(s[i]) << '\n';
  }
  return os.str();
}

}  // namespace qcnt::ioa
