// Composition of I/O automata (Section 2.1).
//
// A System owns a set of component automata with disjoint output sets and is
// itself an Automaton: a composed step applies the operation at every
// component that has it, and the step is enabled iff the (unique) component
// for which it is an output enables it. The Composition Lemma (Lemma 1) is
// what makes schedule replay sound: extending a system schedule by an output
// of component A that is enabled at A yields a system schedule.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ioa/automaton.hpp"

namespace qcnt::ioa {

class System : public Automaton {
 public:
  System() = default;
  explicit System(std::string name) : name_(std::move(name)) {}

  System(System&&) = default;
  System& operator=(System&&) = default;

  /// Add a component. Output-set disjointness is checked lazily: the owner
  /// lookup asserts that at most one component claims an action as output.
  void Add(std::unique_ptr<Automaton> component);

  /// Convenience: construct the component in place and return a reference.
  template <typename T, typename... Args>
  T& Emplace(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    Add(std::move(owned));
    return ref;
  }

  std::size_t ComponentCount() const { return components_.size(); }
  Automaton& Component(std::size_t i) { return *components_[i]; }
  const Automaton& Component(std::size_t i) const { return *components_[i]; }

  /// The component for which a is an output, or nullptr if a is an input of
  /// the composition. Asserts that at most one component claims a.
  const Automaton* OutputOwner(const Action& a) const;

  // Automaton interface.
  std::string Name() const override { return name_; }
  bool IsOperation(const Action& a) const override;
  bool IsOutput(const Action& a) const override;
  bool Enabled(const Action& a) const override;
  void Apply(const Action& a) override;
  void EnabledOutputs(std::vector<Action>& out) const override;
  void Reset() override;

 private:
  std::string name_ = "system";
  std::vector<std::unique_ptr<Automaton>> components_;
};

}  // namespace qcnt::ioa
