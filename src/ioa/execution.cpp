#include "ioa/execution.hpp"

namespace qcnt::ioa {

Schedule Project(const Schedule& s,
                 const std::function<bool(const Action&)>& keep) {
  Schedule out;
  out.reserve(s.size());
  for (const Action& a : s) {
    if (keep(a)) out.push_back(a);
  }
  return out;
}

Schedule ProjectToAutomaton(const Schedule& s, const Automaton& a) {
  return Project(s, [&a](const Action& x) { return a.IsOperation(x); });
}

ReplayResult Replay(System& sys, const Schedule& s) {
  sys.Reset();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Action& a = s[i];
    if (!sys.IsOperation(a)) {
      return {false, i, ToString(a) + " is not an operation of the system"};
    }
    const Automaton* owner = sys.OutputOwner(a);
    if (owner != nullptr && !owner->Enabled(a)) {
      return {false, i,
              ToString(a) + " is an output of " + owner->Name() +
                  " but is not enabled"};
    }
    sys.Apply(a);
  }
  return {};
}

}  // namespace qcnt::ioa
