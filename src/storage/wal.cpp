#include "storage/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <vector>

#include "common/check.hpp"
#include "storage/crc32.hpp"

namespace qcnt::storage {

namespace {

constexpr std::uint32_t kMaxPayload = 1u << 24;  // 16 MiB sanity bound
constexpr std::size_t kFixedPayload = 1 + 8 + 8 + 8 + 4 + 4;

void PutU32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

void PutU64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

std::uint32_t GetU32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t GetU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::vector<unsigned char> EncodePayload(const WalRecord& r) {
  std::vector<unsigned char> out;
  out.reserve(kFixedPayload + r.key.size());
  out.push_back(static_cast<unsigned char>(r.type));
  PutU64(out, r.version);
  PutU64(out, static_cast<std::uint64_t>(r.value));
  PutU64(out, r.generation);
  PutU32(out, r.config_id);
  PutU32(out, static_cast<std::uint32_t>(r.key.size()));
  out.insert(out.end(), r.key.begin(), r.key.end());
  return out;
}

/// Parse one payload; false when it is malformed (wrong size / bad type).
bool DecodePayload(const unsigned char* p, std::size_t size, WalRecord& out) {
  if (size < kFixedPayload) return false;
  const auto type = static_cast<WalRecord::Type>(p[0]);
  if (type != WalRecord::Type::kWrite && type != WalRecord::Type::kConfig) {
    return false;
  }
  out.type = type;
  out.version = GetU64(p + 1);
  out.value = static_cast<std::int64_t>(GetU64(p + 9));
  out.generation = GetU64(p + 17);
  out.config_id = GetU32(p + 25);
  const std::uint32_t keylen = GetU32(p + 29);
  if (kFixedPayload + keylen != size) return false;
  out.key.assign(reinterpret_cast<const char*>(p + kFixedPayload), keylen);
  return true;
}

void WriteAll(int fd, const unsigned char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    QCNT_CHECK_MSG(w > 0, "WAL write failed");
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

const char* ToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kGroupCommit: return "group-commit";
    case FsyncPolicy::kNever: return "never";
  }
  return "?";
}

Wal::Wal(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  QCNT_CHECK_MSG(fd_ >= 0, "cannot open WAL: " + path_);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  QCNT_CHECK(end >= 0);
  size_ = static_cast<std::uint64_t>(end);
}

Wal::~Wal() { Close(); }

void Wal::Append(const WalRecord& record) {
  QCNT_CHECK_MSG(fd_ >= 0, "append on closed WAL");
  const std::vector<unsigned char> payload = EncodePayload(record);
  std::vector<unsigned char> frame;
  frame.reserve(8 + payload.size());
  PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(frame, Crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  WriteAll(fd_, frame.data(), frame.size());
  size_ += frame.size();
  bytes_appended_ += frame.size();
  ++records_;
  if (!sync_pending_.exchange(true, std::memory_order_acq_rel)) {
    window_start_ = std::chrono::steady_clock::now();
  }
  MaybeSync();
}

void Wal::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return;
  QCNT_CHECK_MSG(fd_ >= 0, "append on closed WAL");
  std::vector<unsigned char> buffer;
  for (const WalRecord& record : records) {
    const std::vector<unsigned char> payload = EncodePayload(record);
    PutU32(buffer, static_cast<std::uint32_t>(payload.size()));
    PutU32(buffer, Crc32(payload.data(), payload.size()));
    buffer.insert(buffer.end(), payload.begin(), payload.end());
  }
  WriteAll(fd_, buffer.data(), buffer.size());
  size_ += buffer.size();
  bytes_appended_ += buffer.size();
  records_ += records.size();
  if (!sync_pending_.exchange(true, std::memory_order_acq_rel)) {
    window_start_ = std::chrono::steady_clock::now();
  }
  MaybeSync();
}

void Wal::MaybeSync() {
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      DoSync();
      break;
    case FsyncPolicy::kGroupCommit:
      // One fsync covers every record appended during the window; the ack
      // for an individual record may thus precede its durability — the
      // classic group-commit trade, bounded by the window length.
      if (std::chrono::steady_clock::now() - window_start_ >=
          options_.group_commit_window) {
        DoSync();
      }
      break;
    case FsyncPolicy::kNever:
      break;
  }
}

void Wal::SyncLocked() {
  if (!sync_pending_.load(std::memory_order_acquire) || fd_ < 0) return;
  // Clear the flag *before* fsync: an append racing past the fsync sets
  // it again, so its bytes are covered by the next pass (conservative —
  // never the other way around).
  sync_pending_.store(false, std::memory_order_release);
  QCNT_CHECK(::fsync(fd_) == 0);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
}

void Wal::DoSync() {
  std::lock_guard<std::mutex> lock(sync_mu_);
  SyncLocked();
}

void Wal::Sync() { DoSync(); }

bool Wal::SyncIfDirty() {
  std::lock_guard<std::mutex> lock(sync_mu_);
  if (!sync_pending_.load(std::memory_order_acquire) || fd_ < 0) {
    return false;
  }
  SyncLocked();
  return true;
}

void Wal::TruncateTo(std::uint64_t offset) {
  QCNT_CHECK(fd_ >= 0 && offset <= size_);
  std::lock_guard<std::mutex> lock(sync_mu_);
  QCNT_CHECK(::ftruncate(fd_, static_cast<off_t>(offset)) == 0);
  size_ = offset;
  sync_pending_.store(true, std::memory_order_release);
  SyncLocked();
}

void Wal::Reset() { TruncateTo(0); }

void Wal::Close() {
  if (fd_ < 0) return;
  std::lock_guard<std::mutex> lock(sync_mu_);
  SyncLocked();
  ::close(fd_);
  fd_ = -1;
}

Wal::ReplayResult Wal::Replay(
    const std::string& path,
    const std::function<void(const WalRecord&)>& apply) {
  ReplayResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // absent log == empty log
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) break;  // torn header
    const std::uint32_t len = GetU32(bytes.data() + pos);
    const std::uint32_t crc = GetU32(bytes.data() + pos + 4);
    if (len > kMaxPayload || bytes.size() - pos - 8 < len) break;
    const unsigned char* payload = bytes.data() + pos + 8;
    if (Crc32(payload, len) != crc) break;
    WalRecord record;
    if (!DecodePayload(payload, len, record)) break;
    apply(record);
    ++result.records;
    pos += 8 + len;
  }
  result.valid_bytes = pos;
  result.torn_tail = pos < bytes.size();
  return result;
}

}  // namespace qcnt::storage
