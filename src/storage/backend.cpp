#include "storage/backend.hpp"

#include <filesystem>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "storage/snapshot.hpp"

namespace qcnt::storage {

namespace {

class MemoryBackend final : public Backend {
 public:
  bool Durable() const override { return false; }
  Image Recover() override { return {}; }
  void ApplyWrite(const std::string&, std::uint64_t, std::int64_t) override {}
  void ApplyConfig(std::uint64_t, std::uint32_t) override {}
};

class DurableBackend final : public Backend {
 public:
  // `shard`: nullopt = legacy unsharded layout (wal.log / snapshot.bin);
  // a value selects that shard's segment pair (wal_<s>.log /
  // snapshot_<s>.bin). Several shard backends share one directory.
  DurableBackend(std::string dir, DurabilityOptions options,
                 std::optional<std::size_t> shard,
                 std::shared_ptr<GroupCommitCoordinator> coordinator)
      : dir_(std::move(dir)),
        options_(std::move(options)),
        shard_(shard),
        gc_(std::move(coordinator)) {
    std::filesystem::create_directories(dir_);
  }

  ~DurableBackend() override { ReleaseWal(); }

  bool Durable() const override { return true; }

  Image Recover() override {
    ReleaseWal();  // release any pre-crash handle before reopening
    const RecoveryManager rm(dir_);
    const RecoveryManager::Result r =
        shard_ ? rm.RecoverShard(*shard_) : rm.Recover();
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    recovery_replayed_.fetch_add(r.replayed, std::memory_order_relaxed);
    // Under a coordinator the segment itself never decides to fsync
    // (kNever); the coordinator's committer thread owns the window.
    wal_ = std::make_unique<Wal>(
        WalFilePath(),
        Wal::Options{Coordinated() ? FsyncPolicy::kNever : options_.fsync,
                     options_.group_commit_window});
    if (r.torn_tail) {
      // Cut the torn frame so fresh appends don't land after garbage.
      wal_->TruncateTo(r.wal_valid_bytes);
      torn_tails_.fetch_add(1, std::memory_order_relaxed);
    }
    if (Coordinated()) gc_->Attach(wal_.get());
    return r.image;
  }

  void ApplyWrite(const std::string& key, std::uint64_t version,
                  std::int64_t value) override {
    WalRecord rec;
    rec.type = WalRecord::Type::kWrite;
    rec.key = key;
    rec.version = version;
    rec.value = value;
    AppendAndCount(rec);
  }

  void ApplyWriteBatch(const std::vector<WalRecord>& records) override {
    if (records.empty()) return;
    QCNT_CHECK_MSG(wal_ != nullptr,
                   "durable backend used before Recover()");
    const std::uint64_t bytes_before = wal_->BytesAppended();
    wal_->AppendBatch(records);
    records_.fetch_add(records.size(), std::memory_order_relaxed);
    bytes_.fetch_add(wal_->BytesAppended() - bytes_before,
                     std::memory_order_relaxed);
    batch_appends_.fetch_add(1, std::memory_order_relaxed);
    if (Coordinated()) gc_->MarkDirty();
  }

  void ApplyConfig(std::uint64_t generation,
                   std::uint32_t config_id) override {
    WalRecord rec;
    rec.type = WalRecord::Type::kConfig;
    rec.generation = generation;
    rec.config_id = config_id;
    AppendAndCount(rec);
  }

  void MaybeCompact(const Image& image) override {
    if (!wal_ || wal_->SizeBytes() < options_.snapshot_threshold_bytes) {
      return;
    }
    WriteSnapshotFile(SnapshotFilePath(), image);
    wal_->Reset();
    snapshots_.fetch_add(1, std::memory_order_relaxed);
  }

  void OnCrash() override {
    // fail-stop: the process would die here; we just drop the handle.
    // Data already write(2)n survives in the file, mirroring a process
    // crash; fsync policy governs what a machine crash could lose.
    ReleaseWal();
  }

  StorageStats Stats() const override {
    StorageStats s;
    s.records_appended = records_.load(std::memory_order_relaxed);
    s.bytes_appended = bytes_.load(std::memory_order_relaxed);
    s.batch_appends = batch_appends_.load(std::memory_order_relaxed);
    // Base (closed segments) + live: the live segment's counter moves on
    // a background committer thread under a coordinator, so deltas taken
    // on the append path would miss those syncs entirely. wal_mu_ keeps
    // this read safe against a concurrent ReleaseWal.
    {
      std::lock_guard<std::mutex> lock(wal_mu_);
      s.fsyncs = fsyncs_base_.load(std::memory_order_relaxed) +
                 (wal_ ? wal_->Fsyncs() : 0);
    }
    s.snapshots_installed = snapshots_.load(std::memory_order_relaxed);
    s.recoveries = recoveries_.load(std::memory_order_relaxed);
    s.recovery_replayed =
        recovery_replayed_.load(std::memory_order_relaxed);
    s.torn_tails_discarded = torn_tails_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::string WalFilePath() const {
    return shard_ ? RecoveryManager::ShardWalPath(dir_, *shard_)
                  : RecoveryManager::WalPath(dir_);
  }

  std::string SnapshotFilePath() const {
    return shard_ ? RecoveryManager::ShardSnapshotPath(dir_, *shard_)
                  : SnapshotPath(dir_);
  }

  void AppendAndCount(const WalRecord& rec) {
    QCNT_CHECK_MSG(wal_ != nullptr,
                   "durable backend used before Recover()");
    const std::uint64_t bytes_before = wal_->BytesAppended();
    wal_->Append(rec);
    records_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(wal_->BytesAppended() - bytes_before,
                     std::memory_order_relaxed);
    if (Coordinated()) gc_->MarkDirty();
  }

  bool Coordinated() const {
    return gc_ != nullptr && options_.fsync == FsyncPolicy::kGroupCommit;
  }

  /// Teardown path shared by Recover/OnCrash/dtor: deregister the live
  /// segment from the coordinator (so its committer can no longer touch
  /// it), roll its fsync count into the base, then drop the handle.
  void ReleaseWal() {
    if (!wal_) return;
    if (Coordinated()) gc_->Detach(wal_.get());
    std::lock_guard<std::mutex> lock(wal_mu_);
    fsyncs_base_.fetch_add(wal_->Fsyncs(), std::memory_order_relaxed);
    wal_.reset();
  }

  std::string dir_;
  DurabilityOptions options_;
  std::optional<std::size_t> shard_;
  std::shared_ptr<GroupCommitCoordinator> gc_;
  mutable std::mutex wal_mu_;  // Stats vs ReleaseWal on wal_
  std::unique_ptr<Wal> wal_;

  // Only the server thread mutates the counters; Stats() may race from
  // other threads, hence the atomics. Deltas (not the Wal's own totals)
  // keep them monotone across crash/recover reopens; fsyncs are the
  // exception (see Stats()).
  std::atomic<std::uint64_t> records_{0}, bytes_{0};
  std::atomic<std::uint64_t> fsyncs_base_{0};
  std::atomic<std::uint64_t> batch_appends_{0};
  std::atomic<std::uint64_t> snapshots_{0}, recoveries_{0};
  std::atomic<std::uint64_t> recovery_replayed_{0}, torn_tails_{0};
};

}  // namespace

std::unique_ptr<Backend> MakeMemoryBackend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<Backend> MakeDurableBackend(std::string dir,
                                            DurabilityOptions options) {
  return std::make_unique<DurableBackend>(std::move(dir), std::move(options),
                                          std::nullopt, nullptr);
}

std::unique_ptr<Backend> MakeDurableShardBackend(
    std::string dir, DurabilityOptions options, std::size_t shard,
    std::shared_ptr<GroupCommitCoordinator> coordinator) {
  return std::make_unique<DurableBackend>(std::move(dir), std::move(options),
                                          shard, std::move(coordinator));
}

}  // namespace qcnt::storage
