#include "storage/backend.hpp"

#include <filesystem>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "storage/snapshot.hpp"

namespace qcnt::storage {

namespace {

class MemoryBackend final : public Backend {
 public:
  bool Durable() const override { return false; }
  Image Recover() override { return {}; }
  void ApplyWrite(const std::string&, std::uint64_t, std::int64_t) override {}
  void ApplyConfig(std::uint64_t, std::uint32_t) override {}
};

class DurableBackend final : public Backend {
 public:
  // `shard`: nullopt = legacy unsharded layout (wal.log / snapshot.bin);
  // a value selects that shard's segment pair (wal_<s>.log /
  // snapshot_<s>.bin). Several shard backends share one directory.
  DurableBackend(std::string dir, DurabilityOptions options,
                 std::optional<std::size_t> shard)
      : dir_(std::move(dir)), options_(std::move(options)), shard_(shard) {
    std::filesystem::create_directories(dir_);
  }

  bool Durable() const override { return true; }

  Image Recover() override {
    wal_.reset();  // release any pre-crash handle before reopening
    const RecoveryManager rm(dir_);
    const RecoveryManager::Result r =
        shard_ ? rm.RecoverShard(*shard_) : rm.Recover();
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    recovery_replayed_.fetch_add(r.replayed, std::memory_order_relaxed);
    wal_ = std::make_unique<Wal>(
        WalFilePath(),
        Wal::Options{options_.fsync, options_.group_commit_window});
    if (r.torn_tail) {
      // Cut the torn frame so fresh appends don't land after garbage.
      wal_->TruncateTo(r.wal_valid_bytes);
      torn_tails_.fetch_add(1, std::memory_order_relaxed);
    }
    return r.image;
  }

  void ApplyWrite(const std::string& key, std::uint64_t version,
                  std::int64_t value) override {
    WalRecord rec;
    rec.type = WalRecord::Type::kWrite;
    rec.key = key;
    rec.version = version;
    rec.value = value;
    AppendAndCount(rec);
  }

  void ApplyWriteBatch(const std::vector<WalRecord>& records) override {
    if (records.empty()) return;
    QCNT_CHECK_MSG(wal_ != nullptr,
                   "durable backend used before Recover()");
    const std::uint64_t bytes_before = wal_->BytesAppended();
    const std::uint64_t fsyncs_before = wal_->Fsyncs();
    wal_->AppendBatch(records);
    records_.fetch_add(records.size(), std::memory_order_relaxed);
    bytes_.fetch_add(wal_->BytesAppended() - bytes_before,
                     std::memory_order_relaxed);
    fsyncs_.fetch_add(wal_->Fsyncs() - fsyncs_before,
                      std::memory_order_relaxed);
    batch_appends_.fetch_add(1, std::memory_order_relaxed);
  }

  void ApplyConfig(std::uint64_t generation,
                   std::uint32_t config_id) override {
    WalRecord rec;
    rec.type = WalRecord::Type::kConfig;
    rec.generation = generation;
    rec.config_id = config_id;
    AppendAndCount(rec);
  }

  void MaybeCompact(const Image& image) override {
    if (!wal_ || wal_->SizeBytes() < options_.snapshot_threshold_bytes) {
      return;
    }
    WriteSnapshotFile(SnapshotFilePath(), image);
    wal_->Reset();
    snapshots_.fetch_add(1, std::memory_order_relaxed);
  }

  void OnCrash() override {
    // fail-stop: the process would die here; we just drop the handle.
    // Data already write(2)n survives in the file, mirroring a process
    // crash; fsync policy governs what a machine crash could lose.
    wal_.reset();
  }

  StorageStats Stats() const override {
    StorageStats s;
    s.records_appended = records_.load(std::memory_order_relaxed);
    s.bytes_appended = bytes_.load(std::memory_order_relaxed);
    s.batch_appends = batch_appends_.load(std::memory_order_relaxed);
    s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
    s.snapshots_installed = snapshots_.load(std::memory_order_relaxed);
    s.recoveries = recoveries_.load(std::memory_order_relaxed);
    s.recovery_replayed =
        recovery_replayed_.load(std::memory_order_relaxed);
    s.torn_tails_discarded = torn_tails_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::string WalFilePath() const {
    return shard_ ? RecoveryManager::ShardWalPath(dir_, *shard_)
                  : RecoveryManager::WalPath(dir_);
  }

  std::string SnapshotFilePath() const {
    return shard_ ? RecoveryManager::ShardSnapshotPath(dir_, *shard_)
                  : SnapshotPath(dir_);
  }

  void AppendAndCount(const WalRecord& rec) {
    QCNT_CHECK_MSG(wal_ != nullptr,
                   "durable backend used before Recover()");
    const std::uint64_t bytes_before = wal_->BytesAppended();
    const std::uint64_t fsyncs_before = wal_->Fsyncs();
    wal_->Append(rec);
    records_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(wal_->BytesAppended() - bytes_before,
                     std::memory_order_relaxed);
    fsyncs_.fetch_add(wal_->Fsyncs() - fsyncs_before,
                      std::memory_order_relaxed);
  }

  std::string dir_;
  DurabilityOptions options_;
  std::optional<std::size_t> shard_;
  std::unique_ptr<Wal> wal_;

  // Only the server thread mutates the counters; Stats() may race from
  // other threads, hence the atomics. Deltas (not the Wal's own totals)
  // keep them monotone across crash/recover reopens.
  std::atomic<std::uint64_t> records_{0}, bytes_{0}, fsyncs_{0};
  std::atomic<std::uint64_t> batch_appends_{0};
  std::atomic<std::uint64_t> snapshots_{0}, recoveries_{0};
  std::atomic<std::uint64_t> recovery_replayed_{0}, torn_tails_{0};
};

}  // namespace

std::unique_ptr<Backend> MakeMemoryBackend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<Backend> MakeDurableBackend(std::string dir,
                                            DurabilityOptions options) {
  return std::make_unique<DurableBackend>(std::move(dir), std::move(options),
                                          std::nullopt);
}

std::unique_ptr<Backend> MakeDurableShardBackend(std::string dir,
                                                 DurabilityOptions options,
                                                 std::size_t shard) {
  return std::make_unique<DurableBackend>(std::move(dir), std::move(options),
                                          shard);
}

}  // namespace qcnt::storage
