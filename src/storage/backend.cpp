#include "storage/backend.hpp"

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "storage/checkpoint.hpp"
#include "storage/segment.hpp"
#include "storage/snapshot.hpp"

namespace qcnt::storage {

namespace {

namespace fs = std::filesystem;

class MemoryBackend final : public Backend {
 public:
  bool Durable() const override { return false; }
  Image Recover() override { return {}; }
  void ApplyWrite(const std::string&, std::uint64_t, std::int64_t) override {}
  void ApplyConfig(std::uint64_t, std::uint32_t) override {}
};

/// `seg_<id>.log` / `ckpt_<id>.blk` name parser for the recovery sweep.
std::optional<std::uint64_t> ParseFileId(const std::string& name,
                                         const char* prefix,
                                         const char* suffix) {
  const std::string p(prefix), s(suffix);
  if (name.size() <= p.size() + s.size() || name.rfind(p, 0) != 0 ||
      name.compare(name.size() - s.size(), s.size(), s) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(p.size(), name.size() - p.size() -
                                                      s.size());
  std::uint64_t id = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return id;
}

// The v2 engine for one shard. See backend.hpp for the contract and
// DESIGN.md §12 for the invariants; the short version:
//
//   * dirty_ mirrors every record in the live segment chain (it IS the
//     tail, as a map), so a checkpoint writes |dirty_| entries and then
//     drops the sealed segments wholesale — O(tail) end to end.
//   * every file-set transition commits through one manifest save; files
//     are created before the save and deleted only after it, so the
//     manifest-referenced set is a consistent engine state at every
//     instant a crash could strike.
//   * all state except the stats counters is touched only by the shard's
//     owning worker thread (the coordinator's committer syncs the active
//     Wal through its own internal locking).
class DurableBackend final : public Backend {
 public:
  DurableBackend(std::shared_ptr<Manifest> manifest, DurabilityOptions options,
                 std::size_t shard,
                 std::shared_ptr<GroupCommitCoordinator> coordinator)
      : manifest_(std::move(manifest)),
        options_(std::move(options)),
        shard_(shard),
        gc_(std::move(coordinator)) {
    QCNT_CHECK(shard_ < manifest_->shard_count());
  }

  ~DurableBackend() override { ReleaseAll(); }

  bool Durable() const override { return true; }

  Image Recover() override {
    ReleaseAll();  // release any pre-crash handles before reopening
    const std::string& dir = manifest_->dir();
    QCNT_CHECK_MSG(manifest_->info().ok, manifest_->info().error);
    // Any valid on-disk manifest (v1 or v2) must agree on the shard
    // count; migrating a subset of a differently-striped layout would
    // silently orphan the other shards' data.
    QCNT_CHECK_MSG(manifest_->info().version == 0 ||
                       manifest_->info().disk_shard_count ==
                           manifest_->shard_count(),
                   "manifest shard count mismatch in " + dir);
    fs::create_directories(Manifest::ShardDirPath(dir, shard_));
    recoveries_.fetch_add(1, std::memory_order_relaxed);

    files_ = manifest_->Shard(shard_);
    if (!files_.present) MigrateLegacy();
    SweepUnreferenced();
    RemoveLegacyLeftovers();

    // Open the checkpoint chain footer-only; blocks, index, and bloom
    // stay on disk until a cold read wants them. This is the heart of
    // O(tail) recovery: total state never moves at restart.
    generation_ = 0;
    config_id_ = 0;
    for (const std::uint64_t id : files_.checkpoints) {
      auto reader =
          CheckpointReader::Open(Manifest::CheckpointPath(dir, shard_, id));
      QCNT_CHECK_MSG(reader != nullptr,
                     "unreadable checkpoint: " +
                         Manifest::CheckpointPath(dir, shard_, id));
      if (reader->generation() >= generation_) {
        generation_ = reader->generation();
        config_id_ = reader->config_id();
      }
      readers_.push_back(std::move(reader));
    }

    // Replay the segment tail into the dirty set.
    log_ = std::make_unique<SegmentedLog>(
        manifest_, shard_, &files_, WalOptions(),
        Coordinated() ? gc_ : nullptr);
    const SegmentedLog::ReplayStats replay =
        log_->OpenAndReplay([this](const WalRecord& rec) {
          if (rec.type == WalRecord::Type::kWrite) {
            MergeDirty(rec.key, rec.version, rec.value);
          } else if (rec.generation >= generation_) {
            generation_ = rec.generation;
            config_id_ = rec.config_id;
          }
        });
    recovery_replayed_.fetch_add(replay.records, std::memory_order_relaxed);
    torn_tails_.fetch_add(replay.torn_tails, std::memory_order_relaxed);

    Image image;
    if (!options_.spill_cold_reads) {
      // Materialize the full map (v1-compatible serving mode). Oldest
      // first so newer runs win ties through the normal merge rule.
      for (const auto& reader : readers_) {
        reader->Scan([&image](const std::string& key, const Versioned& v) {
          image.ApplyWrite(key, v.version, v.value);
        });
      }
    }
    for (const auto& [key, v] : dirty_) {
      image.ApplyWrite(key, v.version, v.value);
    }
    image.ApplyConfig(generation_, config_id_);
    return image;
  }

  void ApplyWrite(const std::string& key, std::uint64_t version,
                  std::int64_t value) override {
    QCNT_CHECK_MSG(log_ != nullptr, "durable backend used before Recover()");
    WalRecord rec;
    rec.type = WalRecord::Type::kWrite;
    rec.key = key;
    rec.version = version;
    rec.value = value;
    const std::uint64_t before = log_->BytesAppended();
    log_->Append(rec);
    bytes_.fetch_add(log_->BytesAppended() - before,
                     std::memory_order_relaxed);
    records_.fetch_add(1, std::memory_order_relaxed);
    MergeDirty(key, version, value);
  }

  void ApplyWriteBatch(const std::vector<WalRecord>& records) override {
    if (records.empty()) return;
    QCNT_CHECK_MSG(log_ != nullptr, "durable backend used before Recover()");
    const std::uint64_t before = log_->BytesAppended();
    log_->AppendBatch(records);
    bytes_.fetch_add(log_->BytesAppended() - before,
                     std::memory_order_relaxed);
    records_.fetch_add(records.size(), std::memory_order_relaxed);
    batch_appends_.fetch_add(1, std::memory_order_relaxed);
    for (const WalRecord& r : records) MergeDirty(r.key, r.version, r.value);
  }

  void ApplyConfig(std::uint64_t generation,
                   std::uint32_t config_id) override {
    QCNT_CHECK_MSG(log_ != nullptr, "durable backend used before Recover()");
    WalRecord rec;
    rec.type = WalRecord::Type::kConfig;
    rec.generation = generation;
    rec.config_id = config_id;
    const std::uint64_t before = log_->BytesAppended();
    log_->Append(rec);
    bytes_.fetch_add(log_->BytesAppended() - before,
                     std::memory_order_relaxed);
    records_.fetch_add(1, std::memory_order_relaxed);
    if (generation >= generation_) {
      generation_ = generation;
      config_id_ = config_id;
    }
  }

  void MaybeCompact(Image& image) override {
    if (!log_) return;
    if (log_->TailBytes() >= options_.checkpoint_tail_bytes) {
      DoCheckpoint(image);
    } else if (log_->ActiveBytes() >= options_.segment_bytes) {
      log_->Rotate();
      rotated_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void ForceCheckpoint(Image& image) override {
    if (!log_) return;
    if (dirty_.empty() && log_->TailBytes() == 0) return;  // nothing to do
    DoCheckpoint(image);
  }

  bool Lookup(const std::string& key, Versioned* out) override {
    // Without spill the image materializes every checkpointed key, so an
    // image miss is a true miss — skip the probe (and its counters).
    if (!options_.spill_cold_reads || readers_.empty()) return false;
    cold_lookups_.fetch_add(1, std::memory_order_relaxed);
    // Newest file first: a re-dirtied key's latest durable version lives
    // in the newest run that holds it.
    for (auto it = readers_.rbegin(); it != readers_.rend(); ++it) {
      switch ((*it)->Get(key, out)) {
        case CheckpointReader::Probe::kFound:
          bloom_hits_.fetch_add(1, std::memory_order_relaxed);
          return true;
        case CheckpointReader::Probe::kNotFound:
          bloom_false_positives_.fetch_add(1, std::memory_order_relaxed);
          break;
        case CheckpointReader::Probe::kBloomMiss:
          bloom_misses_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    return false;
  }

  void ScanAbove(const std::string& cursor, std::size_t limit,
                 const std::function<void(const std::string&,
                                          const Versioned&)>& fn) override {
    if (!options_.spill_cold_reads || readers_.empty() || limit == 0) return;
    std::vector<CheckpointReader::Iterator> its;
    its.reserve(readers_.size());
    for (const auto& reader : readers_) {
      // An empty cursor starts the scan at the first key *inclusive* —
      // the catchup stream's opening request must not skip an empty key.
      its.push_back(cursor.empty() ? reader->Begin()
                                   : reader->SeekAbove(cursor));
    }
    std::size_t emitted = 0;
    while (emitted < limit) {
      const std::string* min_key = nullptr;
      for (const auto& it : its) {
        if (it.Valid() && (min_key == nullptr || it.key() < *min_key)) {
          min_key = &it.key();
        }
      }
      if (min_key == nullptr) return;
      const std::string key = *min_key;
      Versioned best{};
      bool have = false;
      for (auto& it : its) {
        while (it.Valid() && it.key() == key) {
          const Versioned& v = it.value();
          if (!have || v.version > best.version ||
              (v.version == best.version && v.value >= best.value)) {
            best = v;
            have = true;
          }
          it.Next();
        }
      }
      fn(key, best);
      ++emitted;
    }
  }

  void ScanAll(const std::function<void(const std::string&,
                                        const Versioned&)>& fn) override {
    if (!options_.spill_cold_reads || readers_.empty()) return;
    std::vector<CheckpointReader*> raw;
    raw.reserve(readers_.size());
    for (const auto& r : readers_) raw.push_back(r.get());
    MergeCheckpoints(raw, fn);
  }

  void OnCrash() override {
    // fail-stop: the process would die here; we just drop the handles.
    // Data already write(2)n survives in the files, mirroring a process
    // crash; fsync policy governs what a machine crash could lose.
    ReleaseAll();
  }

  StorageStats Stats() const override {
    StorageStats s;
    s.records_appended = records_.load(std::memory_order_relaxed);
    s.bytes_appended = bytes_.load(std::memory_order_relaxed);
    s.batch_appends = batch_appends_.load(std::memory_order_relaxed);
    // Base (pre-crash chains) + live: the live chain's counter moves on a
    // background committer thread under a coordinator, so deltas taken on
    // the append path would miss those syncs entirely. log_mu_ keeps this
    // read safe against a concurrent ReleaseAll.
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      s.fsyncs = fsyncs_base_.load(std::memory_order_relaxed) +
                 (log_ ? log_->Fsyncs() : 0);
    }
    s.recoveries = recoveries_.load(std::memory_order_relaxed);
    s.recovery_replayed = recovery_replayed_.load(std::memory_order_relaxed);
    s.torn_tails_discarded = torn_tails_.load(std::memory_order_relaxed);
    s.segments_rotated = rotated_.load(std::memory_order_relaxed);
    s.segments_compacted = compacted_.load(std::memory_order_relaxed);
    s.checkpoints_written = checkpoints_.load(std::memory_order_relaxed);
    s.checkpoint_entries =
        checkpoint_entries_.load(std::memory_order_relaxed);
    s.checkpoint_merges = merges_.load(std::memory_order_relaxed);
    s.cold_lookups = cold_lookups_.load(std::memory_order_relaxed);
    s.bloom_hits = bloom_hits_.load(std::memory_order_relaxed);
    s.bloom_misses = bloom_misses_.load(std::memory_order_relaxed);
    s.bloom_false_positives =
        bloom_false_positives_.load(std::memory_order_relaxed);
    s.migrations = migrations_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  bool Coordinated() const {
    return gc_ != nullptr && options_.fsync == FsyncPolicy::kGroupCommit;
  }

  Wal::Options WalOptions() const {
    // Under a coordinator the segment itself never decides to fsync
    // (kNever); the coordinator's committer thread owns the window.
    return Wal::Options{Coordinated() ? FsyncPolicy::kNever : options_.fsync,
                        options_.group_commit_window};
  }

  void MergeDirty(const std::string& key, std::uint64_t version,
                  std::int64_t value) {
    Versioned& v = dirty_[key];
    if (version > v.version || (version == v.version && value >= v.value)) {
      v.version = version;
      v.value = value;
    }
  }

  /// First Recover() over a shard with no v2 entry but with v1 files:
  /// rebuild the legacy image (snapshot + wal, torn-tail aware), persist
  /// it as the shard's base checkpoint, and commit the v2 entry. The
  /// legacy files are untouched until the manifest save lands, so a crash
  /// anywhere in here just re-runs the migration next time.
  void MigrateLegacy() {
    const std::string& dir = manifest_->dir();
    const bool sharded_files =
        fs::exists(RecoveryManager::ShardWalPath(dir, shard_)) ||
        fs::exists(RecoveryManager::ShardSnapshotPath(dir, shard_));
    const bool unsharded_files =
        shard_ == 0 && manifest_->shard_count() == 1 &&
        (fs::exists(RecoveryManager::WalPath(dir)) ||
         fs::exists(SnapshotPath(dir)));
    if (!sharded_files && !unsharded_files) return;  // genuinely fresh

    const RecoveryManager rm(dir);
    const RecoveryManager::Result legacy =
        sharded_files ? rm.RecoverShard(shard_) : rm.Recover();
    recovery_replayed_.fetch_add(legacy.replayed, std::memory_order_relaxed);
    if (legacy.torn_tail) torn_tails_.fetch_add(1, std::memory_order_relaxed);

    files_.present = true;
    if (!legacy.image.data.empty() || legacy.image.generation > 0 ||
        legacy.image.config_id > 0) {
      const std::uint64_t id = files_.next_file_id++;
      WriteCheckpointFile(id, legacy.image.data, legacy.image.generation,
                          legacy.image.config_id);
      files_.checkpoints.push_back(id);
    }
    manifest_->Update(shard_, files_);  // the migration commit point
    migrations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Delete everything in the shard directory the manifest doesn't
  /// reference: `.tmp` orphans and files created after the last manifest
  /// save (both are redundant by the create→save→delete discipline).
  void SweepUnreferenced() {
    const std::string sdir =
        Manifest::ShardDirPath(manifest_->dir(), shard_);
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(sdir, ec)) {
      const std::string name = entry.path().filename().string();
      bool keep = false;
      if (const auto id = ParseFileId(name, "seg_", ".log")) {
        keep = std::find(files_.segments.begin(), files_.segments.end(),
                         *id) != files_.segments.end();
      } else if (const auto id = ParseFileId(name, "ckpt_", ".blk")) {
        keep = std::find(files_.checkpoints.begin(), files_.checkpoints.end(),
                         *id) != files_.checkpoints.end();
      }
      if (!keep) fs::remove(entry.path(), ec);
    }
  }

  /// A crash between the migration's manifest save and the legacy delete
  /// leaves v1 files next to a committed v2 entry; finish the job.
  void RemoveLegacyLeftovers() {
    if (!files_.present) return;
    const std::string& dir = manifest_->dir();
    std::error_code ec;
    fs::remove(RecoveryManager::ShardWalPath(dir, shard_), ec);
    fs::remove(RecoveryManager::ShardSnapshotPath(dir, shard_), ec);
    if (shard_ == 0 && manifest_->shard_count() == 1) {
      fs::remove(RecoveryManager::WalPath(dir), ec);
      fs::remove(SnapshotPath(dir), ec);
    }
  }

  void WriteCheckpointFile(
      std::uint64_t id,
      const std::unordered_map<std::string, Versioned>& entries,
      std::uint64_t generation, std::uint32_t config_id) {
    std::vector<const std::string*> keys;
    keys.reserve(entries.size());
    for (const auto& [key, v] : entries) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    CheckpointWriter writer(
        Manifest::CheckpointPath(manifest_->dir(), shard_, id),
        entries.size());
    for (const std::string* key : keys) writer.Add(*key, entries.at(*key));
    writer.Finish(generation, config_id);
  }

  /// The incremental checkpoint: seal the tail, persist the dirty set as
  /// one sorted run, commit, reclaim the sealed segments. Runs on the
  /// shard's worker thread — cost is O(|dirty|) = O(tail), so inline
  /// execution is what bounds the pause, not a background thread.
  void DoCheckpoint(Image& image) {
    log_->Rotate();  // everything the checkpoint covers is now sealed
    rotated_.fetch_add(1, std::memory_order_relaxed);

    const std::uint64_t id = files_.next_file_id++;
    WriteCheckpointFile(id, dirty_, generation_, config_id_);
    files_.checkpoints.push_back(id);
    files_.segments = {files_.segments.back()};
    manifest_->Update(shard_, files_);  // commit point
    compacted_.fetch_add(log_->DropSealed(), std::memory_order_relaxed);

    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    checkpoint_entries_.fetch_add(dirty_.size(), std::memory_order_relaxed);
    auto reader = CheckpointReader::Open(
        Manifest::CheckpointPath(manifest_->dir(), shard_, id));
    QCNT_CHECK_MSG(reader != nullptr, "just-written checkpoint unreadable");
    readers_.push_back(std::move(reader));

    if (options_.spill_cold_reads) {
      // Every image entry is now durable in the checkpoint chain; evict
      // the lot. The in-memory map re-grows only with fresh writes, so
      // RAM holds ~one checkpoint interval of keys while the chain holds
      // the rest.
      const std::uint64_t generation = image.generation;
      const std::uint32_t config_id = image.config_id;
      image.data.clear();
      image.generation = generation;
      image.config_id = config_id;
    }
    dirty_.clear();

    if (files_.checkpoints.size() > options_.max_checkpoints) MergeChain();
  }

  /// k-way merge of the whole checkpoint chain into one base run.
  void MergeChain() {
    const std::uint64_t id = files_.next_file_id++;
    std::uint64_t expected = 0;
    std::vector<CheckpointReader*> raw;
    raw.reserve(readers_.size());
    for (const auto& r : readers_) {
      expected += r->entry_count();
      raw.push_back(r.get());
    }
    CheckpointWriter writer(
        Manifest::CheckpointPath(manifest_->dir(), shard_, id), expected);
    MergeCheckpoints(raw, [&writer](const std::string& key,
                                    const Versioned& v) {
      writer.Add(key, v);
    });
    writer.Finish(generation_, config_id_);

    const std::vector<std::uint64_t> old_ids = files_.checkpoints;
    files_.checkpoints = {id};
    manifest_->Update(shard_, files_);  // commit point
    readers_.clear();
    std::error_code ec;
    for (const std::uint64_t old : old_ids) {
      fs::remove(Manifest::CheckpointPath(manifest_->dir(), shard_, old), ec);
    }
    auto reader = CheckpointReader::Open(
        Manifest::CheckpointPath(manifest_->dir(), shard_, id));
    QCNT_CHECK_MSG(reader != nullptr, "just-merged checkpoint unreadable");
    readers_.push_back(std::move(reader));
    merges_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Teardown path shared by Recover/OnCrash/dtor: quiesce the log (which
  /// detaches from the coordinator), roll its fsync count into the base,
  /// then drop every handle.
  void ReleaseAll() {
    if (log_) {
      log_->Release();
      std::lock_guard<std::mutex> lock(log_mu_);
      fsyncs_base_.fetch_add(log_->Fsyncs(), std::memory_order_relaxed);
      log_.reset();
    }
    readers_.clear();
    dirty_.clear();
  }

  std::shared_ptr<Manifest> manifest_;
  DurabilityOptions options_;
  std::size_t shard_;
  std::shared_ptr<GroupCommitCoordinator> gc_;

  ShardFiles files_;
  mutable std::mutex log_mu_;  // Stats vs ReleaseAll on log_
  std::unique_ptr<SegmentedLog> log_;
  std::vector<std::unique_ptr<CheckpointReader>> readers_;  // oldest..newest
  std::unordered_map<std::string, Versioned> dirty_;  // tail, as a map
  std::uint64_t generation_ = 0;
  std::uint32_t config_id_ = 0;

  // Only the server thread mutates the counters; Stats() may race from
  // other threads, hence the atomics. Deltas (not the chain's own totals)
  // keep them monotone across crash/recover reopens; fsyncs are the
  // exception (see Stats()).
  std::atomic<std::uint64_t> records_{0}, bytes_{0};
  std::atomic<std::uint64_t> fsyncs_base_{0};
  std::atomic<std::uint64_t> batch_appends_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> recovery_replayed_{0}, torn_tails_{0};
  std::atomic<std::uint64_t> rotated_{0}, compacted_{0};
  std::atomic<std::uint64_t> checkpoints_{0}, checkpoint_entries_{0};
  std::atomic<std::uint64_t> merges_{0};
  std::atomic<std::uint64_t> cold_lookups_{0};
  std::atomic<std::uint64_t> bloom_hits_{0}, bloom_misses_{0};
  std::atomic<std::uint64_t> bloom_false_positives_{0};
  std::atomic<std::uint64_t> migrations_{0};
};

}  // namespace

std::unique_ptr<Backend> MakeMemoryBackend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<Backend> MakeDurableBackend(std::string dir,
                                            DurabilityOptions options) {
  std::filesystem::create_directories(dir);
  auto manifest = std::make_shared<Manifest>(std::move(dir), 1);
  return std::make_unique<DurableBackend>(std::move(manifest),
                                          std::move(options), 0, nullptr);
}

std::unique_ptr<Backend> MakeDurableShardBackend(
    std::shared_ptr<Manifest> manifest, DurabilityOptions options,
    std::size_t shard, std::shared_ptr<GroupCommitCoordinator> coordinator) {
  return std::make_unique<DurableBackend>(std::move(manifest),
                                          std::move(options), shard,
                                          std::move(coordinator));
}

}  // namespace qcnt::storage
