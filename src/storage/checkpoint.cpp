#include "storage/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "storage/crc32.hpp"
#include "storage/io_util.hpp"

namespace qcnt::storage {
namespace {

constexpr char kHeaderMagic[4] = {'Q', 'C', 'K', '2'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 8;  // magic + format

// generation(8) + config_id(4) + entry_count(8) + four section fields
// (4*8) + crc(4) + footer magic(4).
constexpr std::size_t kFooterSize = 60;
constexpr char kFooterMagic[4] = {'Q', 'C', 'K', 'F'};

// A decoded block payload must stay small; anything larger than this is
// corruption, not data.
constexpr std::uint32_t kMaxBlockPayload = 64u << 20;
constexpr std::uint64_t kMaxSectionLen = 1ull << 32;

bool PreadExact(int fd, unsigned char* buf, std::size_t n, std::uint64_t off) {
  while (n > 0) {
    const ssize_t r = ::pread(fd, buf, n, static_cast<off_t>(off));
    if (r <= 0) return false;
    buf += r;
    off += static_cast<std::uint64_t>(r);
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckpointWriter

CheckpointWriter::CheckpointWriter(std::string path,
                                   std::uint64_t expected_entries,
                                   std::size_t block_bytes)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      block_bytes_(block_bytes == 0 ? kCheckpointBlockBytes : block_bytes),
      bloom_(static_cast<std::size_t>(expected_entries)) {
  fd_ = ::open(tmp_path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  QCNT_CHECK_MSG(fd_ >= 0, "checkpoint: cannot open " + tmp_path_);
  std::vector<unsigned char> header;
  header.insert(header.end(), kHeaderMagic, kHeaderMagic + 4);
  PutU32(header, kFormatVersion);
  WriteAll(fd_, header.data(), header.size(), "checkpoint header");
  file_offset_ = header.size();
}

CheckpointWriter::~CheckpointWriter() {
  if (fd_ >= 0) ::close(fd_);
  // Abandoned writer (crash path in tests): leave the .tmp for recovery
  // cleanup to sweep, exactly as a real crash would.
}

void CheckpointWriter::Add(const std::string& key, const Versioned& value) {
  QCNT_CHECK_MSG(!finished_, "checkpoint: Add after Finish");
  QCNT_CHECK_MSG(entries_ == 0 || key > last_key_,
                 "checkpoint: keys must be strictly ascending");
  if (block_.empty()) block_first_key_ = key;
  PutU32(block_, static_cast<std::uint32_t>(key.size()));
  block_.insert(block_.end(), key.begin(), key.end());
  PutU64(block_, value.version);
  PutU64(block_, static_cast<std::uint64_t>(value.value));
  bloom_.Add(key);
  last_key_ = key;
  ++entries_;
  if (block_.size() >= block_bytes_) FlushBlock();
}

void CheckpointWriter::FlushBlock() {
  if (block_.empty()) return;
  std::vector<unsigned char> frame;
  frame.reserve(block_.size() + 8);
  PutU32(frame, static_cast<std::uint32_t>(block_.size()));
  PutU32(frame, Crc32(block_.data(), block_.size()));
  frame.insert(frame.end(), block_.begin(), block_.end());
  WriteAll(fd_, frame.data(), frame.size(), "checkpoint block");
  index_.push_back({file_offset_, static_cast<std::uint32_t>(block_.size()),
                    block_first_key_});
  file_offset_ += frame.size();
  block_.clear();
}

void CheckpointWriter::Finish(std::uint64_t generation,
                              std::uint32_t config_id) {
  QCNT_CHECK_MSG(!finished_, "checkpoint: double Finish");
  finished_ = true;
  FlushBlock();

  // Index section: count, then (offset, length, first_key) per block,
  // with a trailing CRC over the whole section.
  std::vector<unsigned char> index_bytes;
  PutU32(index_bytes, static_cast<std::uint32_t>(index_.size()));
  for (const IndexEntry& e : index_) {
    PutU64(index_bytes, e.offset);
    PutU32(index_bytes, e.length);
    PutU32(index_bytes, static_cast<std::uint32_t>(e.first_key.size()));
    index_bytes.insert(index_bytes.end(), e.first_key.begin(),
                       e.first_key.end());
  }
  PutU32(index_bytes, Crc32(index_bytes.data(), index_bytes.size()));
  const std::uint64_t index_off = file_offset_;
  WriteAll(fd_, index_bytes.data(), index_bytes.size(), "checkpoint index");
  file_offset_ += index_bytes.size();

  // Bloom section: raw filter bits + CRC.
  std::vector<unsigned char> bloom_bytes(bloom_.Bits().begin(),
                                         bloom_.Bits().end());
  PutU32(bloom_bytes, Crc32(bloom_bytes.data(), bloom_bytes.size()));
  const std::uint64_t bloom_off = file_offset_;
  WriteAll(fd_, bloom_bytes.data(), bloom_bytes.size(), "checkpoint bloom");
  file_offset_ += bloom_bytes.size();

  // Fixed-size footer, CRC'd, magic last so a truncated file can never
  // present a valid footer.
  std::vector<unsigned char> footer;
  PutU64(footer, generation);
  PutU32(footer, config_id);
  PutU64(footer, entries_);
  PutU64(footer, index_off);
  PutU64(footer, static_cast<std::uint64_t>(index_bytes.size()));
  PutU64(footer, bloom_off);
  PutU64(footer, static_cast<std::uint64_t>(bloom_bytes.size()));
  PutU32(footer, Crc32(footer.data(), footer.size()));
  footer.insert(footer.end(), kFooterMagic, kFooterMagic + 4);
  QCNT_CHECK(footer.size() == kFooterSize);
  WriteAll(fd_, footer.data(), footer.size(), "checkpoint footer");

  QCNT_CHECK(::fsync(fd_) == 0);
  ::close(fd_);
  fd_ = -1;
  QCNT_CHECK_MSG(std::rename(tmp_path_.c_str(), path_.c_str()) == 0,
                 "checkpoint: rename failed for " + path_);
  FsyncDir(ParentDir(path_));
}

// ---------------------------------------------------------------------------
// CheckpointReader

std::unique_ptr<CheckpointReader> CheckpointReader::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::uint64_t>(st.st_size) < kHeaderSize + kFooterSize) {
    ::close(fd);
    return nullptr;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  unsigned char header[kHeaderSize];
  unsigned char footer[kFooterSize];
  if (!PreadExact(fd, header, kHeaderSize, 0) ||
      !PreadExact(fd, footer, kFooterSize, size - kFooterSize) ||
      std::memcmp(header, kHeaderMagic, 4) != 0 ||
      GetU32(header + 4) != kFormatVersion ||
      std::memcmp(footer + kFooterSize - 4, kFooterMagic, 4) != 0 ||
      GetU32(footer + kFooterSize - 8) != Crc32(footer, kFooterSize - 8)) {
    ::close(fd);
    return nullptr;
  }

  auto r = std::unique_ptr<CheckpointReader>(new CheckpointReader());
  r->path_ = path;
  r->fd_ = fd;
  r->generation_ = GetU64(footer);
  r->config_id_ = GetU32(footer + 8);
  r->entry_count_ = GetU64(footer + 12);
  r->index_off_ = GetU64(footer + 20);
  r->index_len_ = GetU64(footer + 28);
  r->bloom_off_ = GetU64(footer + 36);
  r->bloom_len_ = GetU64(footer + 44);
  if (r->index_len_ > kMaxSectionLen || r->bloom_len_ > kMaxSectionLen ||
      r->index_off_ + r->index_len_ > size ||
      r->bloom_off_ + r->bloom_len_ > size) {
    return nullptr;  // dtor closes fd
  }
  return r;
}

CheckpointReader::~CheckpointReader() {
  if (fd_ >= 0) ::close(fd_);
}

bool CheckpointReader::EnsureLoaded() {
  if (loaded_) return true;
  if (load_failed_) return false;
  load_failed_ = true;  // until proven otherwise

  std::vector<unsigned char> index_bytes(index_len_);
  if (index_len_ < 8 ||
      !PreadExact(fd_, index_bytes.data(), index_bytes.size(), index_off_)) {
    return false;
  }
  if (GetU32(index_bytes.data() + index_len_ - 4) !=
      Crc32(index_bytes.data(), index_len_ - 4)) {
    return false;
  }
  const std::uint32_t count = GetU32(index_bytes.data());
  std::size_t pos = 4;
  std::vector<IndexEntry> parsed;
  parsed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 16 > index_len_ - 4) return false;
    IndexEntry e;
    e.offset = GetU64(index_bytes.data() + pos);
    e.length = GetU32(index_bytes.data() + pos + 8);
    const std::uint32_t keylen = GetU32(index_bytes.data() + pos + 12);
    pos += 16;
    if (pos + keylen > index_len_ - 4 || e.length > kMaxBlockPayload) {
      return false;
    }
    e.first_key.assign(reinterpret_cast<const char*>(index_bytes.data() + pos),
                       keylen);
    pos += keylen;
    parsed.push_back(std::move(e));
  }

  std::vector<std::uint8_t> bloom_bytes(bloom_len_);
  if (bloom_len_ < 4 ||
      !PreadExact(fd_, bloom_bytes.data(), bloom_bytes.size(), bloom_off_)) {
    return false;
  }
  if (GetU32(bloom_bytes.data() + bloom_len_ - 4) !=
      Crc32(bloom_bytes.data(), bloom_len_ - 4)) {
    return false;
  }
  bloom_bytes.resize(bloom_len_ - 4);

  index_ = std::move(parsed);
  bloom_ = std::make_unique<BloomFilter>(std::move(bloom_bytes));
  loaded_ = true;
  load_failed_ = false;
  return true;
}

bool CheckpointReader::DecodeBlock(
    std::size_t block, std::vector<std::pair<std::string, Versioned>>* out) {
  const IndexEntry& e = index_[block];
  std::vector<unsigned char> frame(8 + e.length);
  if (!PreadExact(fd_, frame.data(), frame.size(), e.offset)) return false;
  if (GetU32(frame.data()) != e.length ||
      GetU32(frame.data() + 4) != Crc32(frame.data() + 8, e.length)) {
    return false;
  }
  out->clear();
  std::size_t pos = 8;
  const std::size_t end = frame.size();
  while (pos < end) {
    if (pos + 4 > end) return false;
    const std::uint32_t keylen = GetU32(frame.data() + pos);
    pos += 4;
    if (pos + keylen + 16 > end) return false;
    std::string key(reinterpret_cast<const char*>(frame.data() + pos), keylen);
    pos += keylen;
    Versioned v;
    v.version = GetU64(frame.data() + pos);
    v.value = static_cast<std::int64_t>(GetU64(frame.data() + pos + 8));
    pos += 16;
    out->emplace_back(std::move(key), v);
  }
  return true;
}

std::size_t CheckpointReader::FindBlock(const std::string& key) {
  // Last block whose first_key <= key.
  std::size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (index_[mid].first_key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? static_cast<std::size_t>(-1) : lo - 1;
}

CheckpointReader::Probe CheckpointReader::Get(const std::string& key,
                                              Versioned* out) {
  if (!EnsureLoaded()) return Probe::kNotFound;
  if (!bloom_->MayContain(key)) return Probe::kBloomMiss;
  const std::size_t block = FindBlock(key);
  if (block == static_cast<std::size_t>(-1)) return Probe::kNotFound;
  if (cached_block_ != block) {
    if (!DecodeBlock(block, &cached_entries_)) {
      cached_block_ = static_cast<std::size_t>(-1);
      return Probe::kNotFound;
    }
    cached_block_ = block;
  }
  const auto it = std::lower_bound(
      cached_entries_.begin(), cached_entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == cached_entries_.end() || it->first != key) return Probe::kNotFound;
  if (out != nullptr) *out = it->second;
  return Probe::kFound;
}

void CheckpointReader::Iterator::LoadBlock() {
  valid_ = false;
  while (reader_ != nullptr && block_ < reader_->index_.size()) {
    if (reader_->DecodeBlock(block_, &entries_) && !entries_.empty()) {
      valid_ = true;
      return;
    }
    ++block_;  // skip unreadable blocks rather than wedging the cursor
    pos_ = 0;
  }
}

void CheckpointReader::Iterator::Next() {
  if (!valid_) return;
  if (++pos_ >= entries_.size()) {
    ++block_;
    pos_ = 0;
    LoadBlock();
  }
}

CheckpointReader::Iterator CheckpointReader::Begin() {
  Iterator it;
  if (!EnsureLoaded()) return it;
  it.reader_ = this;
  it.block_ = 0;
  it.pos_ = 0;
  it.LoadBlock();
  return it;
}

CheckpointReader::Iterator CheckpointReader::SeekAbove(
    const std::string& cursor) {
  Iterator it;
  if (!EnsureLoaded()) return it;
  it.reader_ = this;
  const std::size_t block = FindBlock(cursor);
  it.block_ = block == static_cast<std::size_t>(-1) ? 0 : block;
  it.pos_ = 0;
  it.LoadBlock();
  // Skip entries <= cursor; they can only live in this first block.
  while (it.Valid() && it.key() <= cursor) it.Next();
  return it;
}

void CheckpointReader::Scan(
    const std::function<void(const std::string&, const Versioned&)>& fn) {
  for (Iterator it = Begin(); it.Valid(); it.Next()) fn(it.key(), it.value());
}

// ---------------------------------------------------------------------------
// MergeCheckpoints

void MergeCheckpoints(
    const std::vector<CheckpointReader*>& readers,
    const std::function<void(const std::string&, const Versioned&)>& emit) {
  std::vector<CheckpointReader::Iterator> its;
  its.reserve(readers.size());
  for (CheckpointReader* r : readers) its.push_back(r->Begin());

  // The chain is short (bounded by max_checkpoints), so a linear min-scan
  // beats heap bookkeeping.
  for (;;) {
    const std::string* min_key = nullptr;
    for (const auto& it : its) {
      if (it.Valid() && (min_key == nullptr || it.key() < *min_key)) {
        min_key = &it.key();
      }
    }
    if (min_key == nullptr) return;
    const std::string key = *min_key;  // copy: iterators advance below

    Versioned best{};
    bool have = false;
    for (auto& it : its) {
      while (it.Valid() && it.key() == key) {
        const Versioned& v = it.value();
        // Same ordering as Image::ApplyWrite: higher version wins; equal
        // versions resolve by value so replicas converge byte-for-byte.
        if (!have || v.version > best.version ||
            (v.version == best.version && v.value >= best.value)) {
          best = v;
          have = true;
        }
        it.Next();
      }
    }
    emit(key, best);
  }
}

}  // namespace qcnt::storage
