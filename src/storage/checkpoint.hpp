// Sorted-block checkpoint files — the cold half of the v2 storage engine.
//
// A checkpoint file (`ckpt_<id>.blk`) holds one sorted run of
// key → Versioned entries, laid out as CRC-framed data blocks followed by
// a block index (first key + offset per block), a serialized bloom filter
// over all keys, and a fixed-size footer:
//
//   ┌────────┬─────────────┬───────┬───────┬────────┐
//   │ header │ data blocks │ index │ bloom │ footer │
//   └────────┴─────────────┴───────┴───────┴────────┘
//
// The footer carries the section offsets and the replica stamp
// (generation, config_id), so `Open` reads only the last 60 bytes; the
// index and bloom load lazily on the first actual lookup. That is what
// keeps recovery O(WAL tail): a restart opens every checkpoint in the
// chain by footer alone and replays just the segment tail, never paging
// the sorted runs back through memory.
//
// Readers probe newest file first: the bloom filter (≈1% false positives
// at 10 bits/key) rejects most absent keys without touching a block; a
// hit binary-searches the index and decodes one block. Compaction streams
// several files through `MergeCheckpoints` (per-key newest-version-wins,
// the same ordering as Image::ApplyWrite) into a single replacement run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/bloom.hpp"
#include "storage/image.hpp"

namespace qcnt::storage {

/// Target uncompressed payload size of one data block. Small enough that
/// a cold point read decodes a few KiB, large enough that the index stays
/// a sliver of the data.
inline constexpr std::size_t kCheckpointBlockBytes = 4096;

/// Streams strictly-ascending (key, value) pairs into `path` via a
/// temporary file; nothing is visible at `path` until Finish() renames it
/// in, so a crash mid-write leaves at most an orphaned `.tmp`.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string path, std::uint64_t expected_entries,
                   std::size_t block_bytes = kCheckpointBlockBytes);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Keys must arrive in strictly ascending order.
  void Add(const std::string& key, const Versioned& value);

  /// Seals the file: flushes the last block, writes index + bloom +
  /// footer, fsyncs, and atomically renames into place.
  void Finish(std::uint64_t generation, std::uint32_t config_id);

  std::uint64_t entries() const { return entries_; }

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::string first_key;
  };

  void FlushBlock();

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  std::size_t block_bytes_;
  std::uint64_t file_offset_ = 0;
  std::uint64_t entries_ = 0;
  std::vector<unsigned char> block_;
  std::string block_first_key_;
  std::string last_key_;
  std::vector<IndexEntry> index_;
  BloomFilter bloom_;
  bool finished_ = false;
};

/// Read side. Open() validates only the footer; the index and bloom are
/// decoded on first use. All methods are called from the shard's owning
/// worker thread, so no internal locking.
class CheckpointReader {
 public:
  enum class Probe {
    kBloomMiss,   // filter says definitely absent — no block touched
    kNotFound,    // filter passed but the key is absent (false positive)
    kFound,
  };

  /// nullptr if the file is missing, truncated, or fails CRC.
  static std::unique_ptr<CheckpointReader> Open(const std::string& path);
  ~CheckpointReader();

  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  Probe Get(const std::string& key, Versioned* out);

  /// Ordered cursor over the run, starting at the first key, or at the
  /// first key strictly greater than `cursor` (the catchup contract).
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return entries_[pos_].first; }
    const Versioned& value() const { return entries_[pos_].second; }
    void Next();

   private:
    friend class CheckpointReader;
    CheckpointReader* reader_ = nullptr;
    std::size_t block_ = 0;
    std::size_t pos_ = 0;
    bool valid_ = false;
    std::vector<std::pair<std::string, Versioned>> entries_;

    void LoadBlock();
  };

  Iterator Begin();
  Iterator SeekAbove(const std::string& cursor);

  /// Sequential visit of every entry in key order (used to materialize
  /// the image in non-spill mode).
  void Scan(const std::function<void(const std::string&, const Versioned&)>&
                fn);

  std::uint64_t generation() const { return generation_; }
  std::uint32_t config_id() const { return config_id_; }
  std::uint64_t entry_count() const { return entry_count_; }
  const std::string& path() const { return path_; }

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::string first_key;
  };

  CheckpointReader() = default;

  /// Loads index + bloom if not yet resident. False on corruption.
  bool EnsureLoaded();
  bool DecodeBlock(std::size_t block,
                   std::vector<std::pair<std::string, Versioned>>* out);
  /// Index of the last block whose first_key <= key (block that could
  /// contain `key`), or npos if key precedes everything.
  std::size_t FindBlock(const std::string& key);

  std::string path_;
  int fd_ = -1;
  std::uint64_t generation_ = 0;
  std::uint32_t config_id_ = 0;
  std::uint64_t entry_count_ = 0;
  std::uint64_t index_off_ = 0, index_len_ = 0;
  std::uint64_t bloom_off_ = 0, bloom_len_ = 0;
  bool loaded_ = false;
  bool load_failed_ = false;
  std::vector<IndexEntry> index_;
  std::unique_ptr<BloomFilter> bloom_;
  // One-block decode cache: cold point reads cluster (evicted-clean hot
  // keys, catchup cursors), so the last touched block stays decoded.
  std::size_t cached_block_ = static_cast<std::size_t>(-1);
  std::vector<std::pair<std::string, Versioned>> cached_entries_;
};

/// Streaming k-way merge of checkpoint runs into a single emit stream in
/// ascending key order. When the same key appears in several inputs the
/// surviving entry is the newest by the engine's write order
/// (version, then value — identical to Image::ApplyWrite).
void MergeCheckpoints(
    const std::vector<CheckpointReader*>& readers,
    const std::function<void(const std::string&, const Versioned&)>& emit);

}  // namespace qcnt::storage
