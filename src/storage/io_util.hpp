// Byte-level helpers shared by every on-disk format in src/storage
// (WAL frames, snapshots, checkpoints, MANIFEST): little-endian integer
// put/get, full-write loops, and the fsync/rename choreography that makes
// file installation atomic.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace qcnt::storage {

inline void PutU32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

inline void PutU64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

inline std::uint32_t GetU32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint64_t GetU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline void WriteAll(int fd, const unsigned char* p, std::size_t n,
                     const char* what) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    QCNT_CHECK_MSG(w > 0, std::string(what) + ": write failed");
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Best-effort directory fsync (required for rename durability on POSIX;
/// some filesystems refuse the open, which is fine for tests on tmpfs).
inline void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

inline std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

/// Write `bytes` to `path + ".tmp"`, fsync, rename over `path`, fsync the
/// parent directory — a crash at any point leaves either the old file or
/// the new one, never a mix.
inline void AtomicWriteFile(const std::string& path,
                            const std::vector<unsigned char>& bytes,
                            const char* what) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  QCNT_CHECK_MSG(fd >= 0, std::string(what) + ": cannot open " + tmp);
  WriteAll(fd, bytes.data(), bytes.size(), what);
  QCNT_CHECK(::fsync(fd) == 0);
  ::close(fd);
  QCNT_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 std::string(what) + ": rename failed");
  FsyncDir(ParentDir(path));
}

}  // namespace qcnt::storage
