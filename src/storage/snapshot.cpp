#include "storage/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/check.hpp"
#include "storage/crc32.hpp"

namespace qcnt::storage {

namespace {

constexpr char kMagic[4] = {'Q', 'S', 'N', 'P'};
constexpr std::uint32_t kFormatVersion = 1;

void PutU32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

void PutU64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

std::uint32_t GetU32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t GetU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort; some filesystems refuse
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.bin";
}

void WriteSnapshotFile(const std::string& path, const Image& image) {
  std::vector<unsigned char> payload;
  PutU64(payload, image.generation);
  PutU32(payload, image.config_id);
  PutU64(payload, image.data.size());
  for (const auto& [key, v] : image.data) {
    PutU32(payload, static_cast<std::uint32_t>(key.size()));
    payload.insert(payload.end(), key.begin(), key.end());
    PutU64(payload, v.version);
    PutU64(payload, static_cast<std::uint64_t>(v.value));
  }

  std::vector<unsigned char> file;
  file.reserve(4 + 4 + payload.size() + 4);
  file.insert(file.end(), kMagic, kMagic + 4);
  PutU32(file, kFormatVersion);
  file.insert(file.end(), payload.begin(), payload.end());
  PutU32(file, Crc32(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  QCNT_CHECK_MSG(fd >= 0, "cannot open snapshot temp file: " + tmp);
  const unsigned char* p = file.data();
  std::size_t n = file.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    QCNT_CHECK_MSG(w > 0, "snapshot write failed");
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  QCNT_CHECK(::fsync(fd) == 0);
  ::close(fd);
  QCNT_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "snapshot rename failed");
  const std::size_t slash = path.rfind('/');
  if (slash != std::string::npos) FsyncDir(path.substr(0, slash));
}

void WriteSnapshot(const std::string& dir, const Image& image) {
  WriteSnapshotFile(SnapshotPath(dir), image);
}

std::optional<Image> LoadSnapshot(const std::string& dir) {
  return LoadSnapshotFile(SnapshotPath(dir));
}

std::optional<Image> LoadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  if (bytes.size() < 4 + 4 + 8 + 4 + 8 + 4) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) return std::nullopt;
  if (GetU32(bytes.data() + 4) != kFormatVersion) return std::nullopt;
  const unsigned char* payload = bytes.data() + 8;
  const std::size_t payload_size = bytes.size() - 8 - 4;
  const std::uint32_t stored_crc = GetU32(bytes.data() + bytes.size() - 4);
  if (Crc32(payload, payload_size) != stored_crc) return std::nullopt;

  Image image;
  std::size_t pos = 0;
  auto need = [&](std::size_t n) { return payload_size - pos >= n; };
  image.generation = GetU64(payload + pos);
  pos += 8;
  image.config_id = GetU32(payload + pos);
  pos += 4;
  const std::uint64_t count = GetU64(payload + pos);
  pos += 8;
  image.data.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!need(4)) return std::nullopt;
    const std::uint32_t keylen = GetU32(payload + pos);
    pos += 4;
    if (!need(keylen + 16)) return std::nullopt;
    std::string key(reinterpret_cast<const char*>(payload + pos), keylen);
    pos += keylen;
    Versioned v;
    v.version = GetU64(payload + pos);
    pos += 8;
    v.value = static_cast<std::int64_t>(GetU64(payload + pos));
    pos += 8;
    image.data.emplace(std::move(key), v);
  }
  return image;
}

}  // namespace qcnt::storage
