// SegmentedLog: the WAL tail of one shard as a chain of bounded segments.
//
// v1 kept a single ever-growing `wal_<s>.log` per shard. v2 stripes the
// same frame format across `shard_<s>/seg_<id>.log` files: appends go to
// the newest ("active") segment; once it exceeds `segment_bytes` it is
// sealed and a fresh segment becomes active (create file → manifest save
// → swap handles, so a crash at any point leaves either chain intact).
// Sealed segments are immutable; after a checkpoint persists their
// contents they are dropped wholesale — which is what makes log
// reclamation O(tail), no rewrite of surviving records.
//
// Group-commit wiring is unchanged from the single-segment design: under
// a coordinator the active segment appends with FsyncPolicy::kNever and
// the coordinator's committer thread owns the fsync; rotation detaches
// the sealed segment (waiting out any in-flight pass) before closing it.
//
// All methods except Fsyncs() run on the shard's owning worker thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "storage/commit.hpp"
#include "storage/manifest.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {

class SegmentedLog {
 public:
  /// `files` is the backend's live manifest entry; the log mutates its
  /// `segments` / `next_file_id` fields and persists every transition
  /// through `manifest->Update(shard, *files)`. The caller keeps `files`
  /// alive for the lifetime of the log.
  SegmentedLog(std::shared_ptr<Manifest> manifest, std::size_t shard,
               ShardFiles* files, Wal::Options wal_options,
               std::shared_ptr<GroupCommitCoordinator> coordinator);
  ~SegmentedLog();

  SegmentedLog(const SegmentedLog&) = delete;
  SegmentedLog& operator=(const SegmentedLog&) = delete;

  struct ReplayStats {
    std::uint64_t records = 0;   // frames applied across all segments
    std::size_t torn_tails = 0;  // segments whose tail failed validation
  };

  /// Replays every manifest-listed segment oldest → newest through
  /// `apply`, truncates a torn tail on the active (last) segment, opens
  /// the active segment for append, and attaches it to the coordinator.
  /// Creates the first segment (manifest save included) when the list is
  /// empty — a fresh or just-migrated shard.
  ReplayStats OpenAndReplay(
      const std::function<void(const WalRecord&)>& apply);

  void Append(const WalRecord& record);
  void AppendBatch(const std::vector<WalRecord>& records);

  /// Seal the active segment and start a new one. No-op before
  /// OpenAndReplay.
  void Rotate();

  /// Delete every sealed segment's file (the caller has already committed
  /// a manifest state whose `segments` list holds only the active id —
  /// i.e. a checkpoint landed). Returns how many files went away.
  std::size_t DropSealed();

  /// Bytes in the live chain: sealed segments + active segment. This is
  /// the recovery tail the checkpoint policy bounds.
  std::uint64_t TailBytes() const { return sealed_bytes_ + ActiveBytes(); }
  std::uint64_t ActiveBytes() const { return wal_ ? wal_->SizeBytes() : 0; }
  std::size_t SealedCount() const {
    return files_->segments.empty() ? 0 : files_->segments.size() - 1;
  }
  std::uint64_t BytesAppended() const {
    return bytes_appended_base_ + (wal_ ? wal_->BytesAppended() : 0);
  }

  /// Fsyncs across the whole chain, sealed (rolled into a base at
  /// rotation/release) plus active. Safe to call from the stats thread
  /// while the worker rotates.
  std::uint64_t Fsyncs() const;

  /// Detach from the coordinator and close the active handle (crash /
  /// teardown). The chain on disk is untouched.
  void Release();

 private:
  bool Coordinated() const { return coordinator_ != nullptr; }
  void OpenActive(std::uint64_t id, bool create);
  void SwapActive(std::unique_ptr<Wal> next);

  std::shared_ptr<Manifest> manifest_;
  std::size_t shard_;
  ShardFiles* files_;
  Wal::Options wal_options_;
  std::shared_ptr<GroupCommitCoordinator> coordinator_;

  mutable std::mutex wal_mu_;  // guards wal_ swaps against Fsyncs()
  std::unique_ptr<Wal> wal_;   // active segment
  std::uint64_t sealed_bytes_ = 0;  // valid bytes in sealed segments
  std::uint64_t bytes_appended_base_ = 0;
  std::atomic<std::uint64_t> fsyncs_base_{0};
};

}  // namespace qcnt::storage
