// The recoverable state of one replica.
//
// A replica's durable state is exactly what the paper's DM holds: a
// (version, value) pair per logical item plus one store-wide
// (generation, configuration) stamp for Section-4 reconfiguration. An
// Image is that state as a plain value — what a snapshot stores and what
// recovery rebuilds.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace qcnt::storage {

struct Versioned {
  std::uint64_t version = 0;
  std::int64_t value = 0;
};

struct Image {
  std::unordered_map<std::string, Versioned> data;
  std::uint64_t generation = 0;
  std::uint32_t config_id = 0;

  /// Merge one write under the runtime's total order: newer version wins;
  /// ties resolve toward the larger value. Replay uses the same rule as the
  /// live server, so re-applying old log records over a newer snapshot is
  /// idempotent.
  void ApplyWrite(const std::string& key, std::uint64_t version,
                  std::int64_t value) {
    Versioned& v = data[key];
    if (version > v.version || (version == v.version && value >= v.value)) {
      v.version = version;
      v.value = value;
    }
  }

  /// Merge one configuration install (newer generation wins).
  void ApplyConfig(std::uint64_t generation, std::uint32_t config_id_in) {
    if (generation >= this->generation) {
      this->generation = generation;
      config_id = config_id_in;
    }
  }
};

}  // namespace qcnt::storage
