// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for WAL and
// snapshot framing. Self-contained so the storage layer carries no
// external dependency; the table is computed at compile time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace qcnt::storage {

namespace detail {
constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace detail

/// One-shot CRC-32 of a byte range. `seed` allows incremental use:
/// Crc32(b, n2, Crc32(a, n1)) == CRC of a||b.
inline std::uint32_t Crc32(const void* data, std::size_t size,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace qcnt::storage
