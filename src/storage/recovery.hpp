// RecoveryManager: rebuild a replica's Image from its durability directory.
//
// v2 engine layout: `MANIFEST` (v2) names, per shard, a chain of WAL
// segments (`shard_<s>/seg_<id>.log`) and a chain of sorted checkpoint
// runs (`shard_<s>/ckpt_<id>.blk`). Recovery = open the checkpoint chain,
// replay the segment chain over it with the live server's own merge rule.
// The result is exactly the state the replica had durably acknowledged
// before it lost volatile memory; anything after the last synced record
// is gone — which is the failure the quorum protocol is built to absorb
// (Lemma 8: any read quorum still intersects every write quorum, so the
// highest-versioned surviving copy is the logical state).
//
// Legacy layouts remain first-class inputs: a v1 unsharded store
// (`wal.log` / `snapshot.bin`) or a v1 sharded store (`wal_<s>.log` +
// `snapshot_<s>.bin` + MANIFEST v1) recovers here directly, and the
// DurableBackend migrates it in place on first open (legacy image →
// base checkpoint → v2 manifest entry → legacy files deleted).
//
// The manifest makes partial layouts detectable: recovery with a missing
// referenced file, or a configured shard count that disagrees with the
// manifest, is rejected outright instead of silently resurrecting a
// subset of the acked state.
#pragma once

#include <optional>
#include <string>

#include "storage/image.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {

class RecoveryManager {
 public:
  /// `wal.log` inside `dir` (legacy unsharded layout).
  static std::string WalPath(const std::string& dir);
  /// `wal_<shard>.log` inside `dir` (legacy v1 sharded layout).
  static std::string ShardWalPath(const std::string& dir, std::size_t shard);
  /// `snapshot_<shard>.bin` inside `dir` (legacy v1 sharded layout).
  static std::string ShardSnapshotPath(const std::string& dir,
                                       std::size_t shard);
  /// `MANIFEST` inside `dir`.
  static std::string ManifestPath(const std::string& dir);

  /// Atomically (tmp + rename) write a **v1** manifest pinning
  /// `shard_count`. The live engine writes v2 manifests through
  /// storage::Manifest; this writer exists so tests can fabricate
  /// legacy stores and exercise the migration path.
  static void WriteManifest(const std::string& dir, std::size_t shard_count);
  /// The manifest's shard count, accepting either manifest version;
  /// nullopt when the file is absent or fails validation (bad magic,
  /// short file, CRC mismatch).
  static std::optional<std::size_t> ReadManifest(const std::string& dir);

  explicit RecoveryManager(std::string dir);

  struct Result {
    Image image;
    bool from_snapshot = false;       // a valid snapshot seeded the image
    std::uint64_t replayed = 0;       // WAL records applied on top
    std::uint64_t wal_valid_bytes = 0;  // well-formed WAL prefix length
    bool torn_tail = false;           // trailing garbage detected and cut
  };

  /// Rebuild the image from the legacy unsharded layout (`wal.log`).
  /// Does not modify any file; the caller decides whether to truncate
  /// the WAL to `wal_valid_bytes` before appending.
  Result Recover() const;

  /// Rebuild one shard's image from its legacy v1 segment pair.
  Result RecoverShard(std::size_t shard) const;

  struct LayoutCheck {
    bool ok = true;
    bool manifest_present = false;
    std::size_t shard_count = 0;  // from the manifest, when present
    std::string error;            // set when !ok
  };

  /// Verify the directory can host a replica configured with
  /// `expected_shards` shards. Passes: a fresh directory, a matching v2
  /// layout (every referenced file present), or a matching v1 layout
  /// (every legacy segment present — it will migrate on open). Fails
  /// with a diagnostic: a corrupt manifest, a shard-count mismatch, a
  /// referenced file missing, or a legacy unsharded log that a
  /// multi-shard replica cannot adopt (its keys were never striped).
  LayoutCheck ValidateShardLayout(std::size_t expected_shards) const;

  struct ReplicaResult {
    bool ok = true;
    std::string error;            // set when !ok
    Image image;                  // merged across all shards
    std::size_t shard_count = 0;  // shards merged
    std::uint64_t replayed = 0;   // WAL records applied, total
    std::size_t torn_segments = 0;
  };

  /// Rebuild the whole replica image offline by materializing every
  /// shard the manifest names — v2 shards from checkpoint chain + segment
  /// replay, pre-migration shards from their legacy files, and the legacy
  /// single log when no manifest exists. Refuses — rather than recovering
  /// a silent subset — when the manifest is corrupt or any referenced
  /// file is missing.
  ReplicaResult RecoverReplica() const;

 private:
  std::string dir_;
};

}  // namespace qcnt::storage
