// RecoveryManager: rebuild a replica's Image from its durability directory.
//
// Recovery = load the snapshot (if any, CRC-validated) then replay the WAL
// over it with the live server's own merge rule. The result is exactly the
// state the replica had durably acknowledged before it lost volatile
// memory; anything after the last synced record is gone — which is the
// failure the quorum protocol is built to absorb (Lemma 8: any read quorum
// still intersects every write quorum, so the highest-versioned surviving
// copy is the logical state).
#pragma once

#include <string>

#include "storage/image.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {

class RecoveryManager {
 public:
  /// `wal.log` inside `dir`.
  static std::string WalPath(const std::string& dir);

  explicit RecoveryManager(std::string dir);

  struct Result {
    Image image;
    bool from_snapshot = false;       // a valid snapshot seeded the image
    std::uint64_t replayed = 0;       // WAL records applied on top
    std::uint64_t wal_valid_bytes = 0;  // well-formed WAL prefix length
    bool torn_tail = false;           // trailing garbage detected and cut
  };

  /// Rebuild the image. Does not modify any file; the caller decides
  /// whether to truncate the WAL to `wal_valid_bytes` before appending.
  Result Recover() const;

 private:
  std::string dir_;
};

}  // namespace qcnt::storage
