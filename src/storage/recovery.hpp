// RecoveryManager: rebuild a replica's Image from its durability directory.
//
// Recovery = load the snapshot (if any, CRC-validated) then replay the WAL
// over it with the live server's own merge rule. The result is exactly the
// state the replica had durably acknowledged before it lost volatile
// memory; anything after the last synced record is gone — which is the
// failure the quorum protocol is built to absorb (Lemma 8: any read quorum
// still intersects every write quorum, so the highest-versioned surviving
// copy is the logical state).
//
// Sharded layout: a replica running S worker shards stripes its log as
// `wal_<s>.log` + `snapshot_<s>.bin`, one pair per shard, plus a MANIFEST
// pinning S. Keys are routed to shards by a hash that is stable across
// runs, so segment s contains *only* shard s's keys and each segment can
// be recovered independently; merging segment images is conflict-free.
// The manifest makes partial layouts detectable: recovery with a missing
// segment, or a configured shard count that disagrees with the manifest,
// is rejected outright instead of silently resurrecting a subset of the
// acked state.
#pragma once

#include <optional>
#include <string>

#include "storage/image.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {

class RecoveryManager {
 public:
  /// `wal.log` inside `dir` (legacy unsharded layout).
  static std::string WalPath(const std::string& dir);
  /// `wal_<shard>.log` inside `dir`.
  static std::string ShardWalPath(const std::string& dir, std::size_t shard);
  /// `snapshot_<shard>.bin` inside `dir`.
  static std::string ShardSnapshotPath(const std::string& dir,
                                       std::size_t shard);
  /// `MANIFEST` inside `dir`.
  static std::string ManifestPath(const std::string& dir);

  /// Atomically (tmp + rename) record `shard_count` in `dir`'s manifest.
  static void WriteManifest(const std::string& dir, std::size_t shard_count);
  /// The manifest's shard count; nullopt when the file is absent or fails
  /// validation (bad magic, short file, CRC mismatch).
  static std::optional<std::size_t> ReadManifest(const std::string& dir);

  explicit RecoveryManager(std::string dir);

  struct Result {
    Image image;
    bool from_snapshot = false;       // a valid snapshot seeded the image
    std::uint64_t replayed = 0;       // WAL records applied on top
    std::uint64_t wal_valid_bytes = 0;  // well-formed WAL prefix length
    bool torn_tail = false;           // trailing garbage detected and cut
  };

  /// Rebuild the image from the unsharded layout (`wal.log`). Does not
  /// modify any file; the caller decides whether to truncate the WAL to
  /// `wal_valid_bytes` before appending.
  Result Recover() const;

  /// Rebuild one shard's image from its segment pair.
  Result RecoverShard(std::size_t shard) const;

  struct LayoutCheck {
    bool ok = true;
    bool manifest_present = false;
    std::size_t shard_count = 0;  // from the manifest, when present
    std::string error;            // set when !ok
  };

  /// Verify the directory can host a replica configured with
  /// `expected_shards` shards. A fresh directory (no manifest, no legacy
  /// wal.log) passes; a manifest disagreeing with `expected_shards`, a
  /// corrupt manifest, a manifest with a missing WAL segment, or a legacy
  /// unsharded log all fail with a diagnostic.
  LayoutCheck ValidateShardLayout(std::size_t expected_shards) const;

  struct ReplicaResult {
    bool ok = true;
    std::string error;            // set when !ok
    Image image;                  // merged across all segments
    std::size_t shard_count = 0;  // segments merged
    std::uint64_t replayed = 0;   // total WAL records applied
    std::size_t torn_segments = 0;
  };

  /// Rebuild the whole replica image by recovering and merging every
  /// segment the manifest names (or the legacy single log when no manifest
  /// exists). Refuses — rather than recovering a silent subset — when the
  /// manifest is corrupt or any named segment file is missing.
  ReplicaResult RecoverReplica() const;

 private:
  std::string dir_;
};

}  // namespace qcnt::storage
