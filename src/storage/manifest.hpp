// MANIFEST v2: the per-replica table of storage files.
//
// v1 pinned only the shard count. v2 additionally names, per shard, the
// live WAL segments (`shard_<s>/seg_<id>.log`, oldest → newest, last one
// active) and the live checkpoint chain (`shard_<s>/ckpt_<id>.blk`,
// oldest → newest), plus the shard's monotone file-id counter. The
// manifest is the single commit point for every storage-engine state
// transition:
//
//   create new files  →  manifest save (atomic rename)  →  delete old files
//
// A crash before the save leaves unreferenced new files (swept on
// recovery); a crash after it leaves unreferenced old files (same sweep).
// Nothing the manifest references is ever deleted, so the referenced set
// is always a complete, consistent engine state.
//
// One Manifest object is shared by all shard backends of a replica
// directory (like the GroupCommitCoordinator); a mutex serializes saves.
// Shards that have no v2 entry yet but do have legacy v1 files
// (`wal_<s>.log` + `snapshot_<s>.bin`, or unsharded `wal.log`) are
// migrated lazily by their backend on first Recover().
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace qcnt::storage {

/// One shard's slice of the manifest.
struct ShardFiles {
  bool present = false;  // no v2 entry yet (fresh shard or pre-migration)
  std::uint64_t next_file_id = 1;  // ids below this are spent
  std::vector<std::uint64_t> segments;     // oldest..newest; back() active
  std::vector<std::uint64_t> checkpoints;  // oldest..newest
};

class Manifest {
 public:
  /// How the on-disk file parsed at construction time.
  struct LoadInfo {
    bool ok = true;      // false only for a corrupt/unreadable manifest
    std::string error;   // set when !ok
    std::uint32_t version = 0;  // 0 = absent, 1 = legacy, 2 = current
    std::size_t disk_shard_count = 0;  // meaningful when version != 0
  };

  /// Reads `dir`/MANIFEST. An absent or v1 file yields an empty table of
  /// `shard_count` non-present shards (v1 stores migrate shard by shard);
  /// a v2 file's entries are adopted. A corrupt file or a v2 shard count
  /// disagreeing with `shard_count` is reported via info() — callers
  /// validate before wiring backends.
  Manifest(std::string dir, std::size_t shard_count);

  const LoadInfo& info() const { return info_; }
  const std::string& dir() const { return dir_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Snapshot of one shard's entry (copied under the lock).
  ShardFiles Shard(std::size_t shard) const;

  /// Replace one shard's entry and atomically persist the whole manifest.
  /// This is the commit point of every rotation/checkpoint/compaction.
  void Update(std::size_t shard, const ShardFiles& files);

  // Path helpers — all storage files of shard `s` live in
  // `<dir>/shard_<s>/`.
  static std::string ShardDirPath(const std::string& dir, std::size_t shard);
  static std::string SegmentPath(const std::string& dir, std::size_t shard,
                                 std::uint64_t id);
  static std::string CheckpointPath(const std::string& dir, std::size_t shard,
                                    std::uint64_t id);

  /// Shard count from any valid MANIFEST version (1 or 2); nullopt when
  /// absent or corrupt. The v2-aware replacement for the old
  /// RecoveryManager::ReadManifest.
  static std::optional<std::size_t> ReadShardCount(const std::string& dir);

 private:
  void SaveLocked();

  mutable std::mutex mu_;
  std::string dir_;
  LoadInfo info_;
  std::vector<ShardFiles> shards_;
};

}  // namespace qcnt::storage
