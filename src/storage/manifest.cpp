#include "storage/manifest.hpp"

#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/check.hpp"
#include "storage/crc32.hpp"
#include "storage/io_util.hpp"

namespace qcnt::storage {
namespace {

constexpr char kMagic[4] = {'Q', 'M', 'A', 'N'};
constexpr std::uint32_t kV1 = 1;
constexpr std::uint32_t kV2 = 2;
constexpr std::uint32_t kMaxFilesPerShard = 1u << 20;

std::string ManifestFile(const std::string& dir) { return dir + "/MANIFEST"; }

std::optional<std::vector<unsigned char>> ReadWhole(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::vector<unsigned char>{std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>()};
}

}  // namespace

Manifest::Manifest(std::string dir, std::size_t shard_count)
    : dir_(std::move(dir)) {
  QCNT_CHECK(shard_count >= 1);
  shards_.resize(shard_count);

  const std::optional<std::vector<unsigned char>> bytes =
      ReadWhole(ManifestFile(dir_));
  if (!bytes) return;  // absent: fresh directory (version stays 0)

  auto corrupt = [&](const std::string& why) {
    info_.ok = false;
    info_.error = "corrupt manifest " + ManifestFile(dir_) + ": " + why;
  };

  if (bytes->size() < 4 + 8 + 4 || std::memcmp(bytes->data(), kMagic, 4) != 0) {
    corrupt("bad magic or short file");
    return;
  }
  const unsigned char* payload = bytes->data() + 4;
  const std::size_t payload_len = bytes->size() - 8;
  if (Crc32(payload, payload_len) != GetU32(bytes->data() + bytes->size() - 4)) {
    corrupt("CRC mismatch");
    return;
  }

  info_.version = GetU32(payload);
  if (info_.version == kV1) {
    if (payload_len != 8) {
      corrupt("bad v1 payload length");
      return;
    }
    info_.disk_shard_count = GetU32(payload + 4);
    // v1 names no files; shards stay non-present and migrate lazily.
    return;
  }
  if (info_.version != kV2) {
    corrupt("unknown version " + std::to_string(info_.version));
    return;
  }

  std::size_t pos = 4;
  auto need = [&](std::size_t n) { return pos + n <= payload_len; };
  if (!need(4)) {
    corrupt("truncated v2 header");
    return;
  }
  info_.disk_shard_count = GetU32(payload + pos);
  pos += 4;
  if (info_.disk_shard_count < 1) {
    corrupt("zero shard count");
    return;
  }

  std::vector<ShardFiles> parsed(info_.disk_shard_count);
  for (ShardFiles& sf : parsed) {
    if (!need(1)) {
      corrupt("truncated shard entry");
      return;
    }
    sf.present = payload[pos++] != 0;
    if (!sf.present) continue;
    if (!need(8 + 4)) {
      corrupt("truncated shard entry");
      return;
    }
    sf.next_file_id = GetU64(payload + pos);
    pos += 8;
    for (std::vector<std::uint64_t>* list : {&sf.segments, &sf.checkpoints}) {
      if (!need(4)) {
        corrupt("truncated file list");
        return;
      }
      const std::uint32_t n = GetU32(payload + pos);
      pos += 4;
      if (n > kMaxFilesPerShard || !need(std::size_t{n} * 8)) {
        corrupt("oversized file list");
        return;
      }
      list->reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        list->push_back(GetU64(payload + pos));
        pos += 8;
      }
    }
  }
  if (pos != payload_len) {
    corrupt("trailing bytes");
    return;
  }

  if (info_.disk_shard_count == shard_count) {
    shards_ = std::move(parsed);
  }
  // On a count mismatch the caller's layout validation rejects the
  // directory before any backend touches it; keep the empty table so a
  // mis-wired Manifest cannot silently operate on the wrong stripes.
}

ShardFiles Manifest::Shard(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  QCNT_CHECK(shard < shards_.size());
  return shards_[shard];
}

void Manifest::Update(std::size_t shard, const ShardFiles& files) {
  std::lock_guard<std::mutex> lock(mu_);
  QCNT_CHECK(shard < shards_.size());
  shards_[shard] = files;
  SaveLocked();
}

void Manifest::SaveLocked() {
  std::vector<unsigned char> payload;
  PutU32(payload, kV2);
  PutU32(payload, static_cast<std::uint32_t>(shards_.size()));
  for (const ShardFiles& sf : shards_) {
    payload.push_back(sf.present ? 1 : 0);
    if (!sf.present) continue;
    PutU64(payload, sf.next_file_id);
    for (const std::vector<std::uint64_t>* list :
         {&sf.segments, &sf.checkpoints}) {
      PutU32(payload, static_cast<std::uint32_t>(list->size()));
      for (const std::uint64_t id : *list) PutU64(payload, id);
    }
  }

  std::vector<unsigned char> file;
  file.insert(file.end(), kMagic, kMagic + 4);
  file.insert(file.end(), payload.begin(), payload.end());
  PutU32(file, Crc32(payload.data(), payload.size()));
  AtomicWriteFile(ManifestFile(dir_), file, "manifest");
}

std::string Manifest::ShardDirPath(const std::string& dir, std::size_t shard) {
  return dir + "/shard_" + std::to_string(shard);
}

std::string Manifest::SegmentPath(const std::string& dir, std::size_t shard,
                                  std::uint64_t id) {
  return ShardDirPath(dir, shard) + "/seg_" + std::to_string(id) + ".log";
}

std::string Manifest::CheckpointPath(const std::string& dir, std::size_t shard,
                                     std::uint64_t id) {
  return ShardDirPath(dir, shard) + "/ckpt_" + std::to_string(id) + ".blk";
}

std::optional<std::size_t> Manifest::ReadShardCount(const std::string& dir) {
  const std::optional<std::vector<unsigned char>> bytes =
      ReadWhole(ManifestFile(dir));
  if (!bytes || bytes->size() < 4 + 8 + 4 ||
      std::memcmp(bytes->data(), kMagic, 4) != 0) {
    return std::nullopt;
  }
  const unsigned char* payload = bytes->data() + 4;
  const std::size_t payload_len = bytes->size() - 8;
  if (Crc32(payload, payload_len) != GetU32(bytes->data() + bytes->size() - 4)) {
    return std::nullopt;
  }
  const std::uint32_t version = GetU32(payload);
  if (version != kV1 && version != kV2) return std::nullopt;
  if (version == kV1 && payload_len != 8) return std::nullopt;
  const std::uint32_t count = GetU32(payload + 4);
  if (count < 1) return std::nullopt;
  return static_cast<std::size_t>(count);
}

}  // namespace qcnt::storage
