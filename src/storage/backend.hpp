// Pluggable per-replica storage backend.
//
// A ReplicaServer applies every mutation to its in-memory Image and then
// notifies its Backend *before* acking the client — write-ahead in the
// Gray/Lamport sense: the ack implies the backend accepted the record.
//
//   MemoryBackend  — no-op persistence; a crash only partitions the node
//                    (the seed's behavior, zero overhead on the hot path).
//   DurableBackend — WAL + snapshots in a per-replica directory; a crash
//                    wipes the replica's volatile state and recovery
//                    rebuilds the Image via RecoveryManager.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/commit.hpp"
#include "storage/image.hpp"
#include "storage/recovery.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {

/// Knobs for the durable backend (embedded in runtime StoreOptions).
struct DurabilityOptions {
  /// Store-wide root; replica r keeps its WAL + snapshot under
  /// `<directory>/replica_<r>`.
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  std::chrono::microseconds group_commit_window{500};
  /// kGroupCommit only: true (default) routes the fsync decision through
  /// one per-replica GroupCommitCoordinator spanning every shard segment;
  /// false keeps the pre-coordinator behavior of each shard's WAL running
  /// its own inline window (one independent fsync stream per shard —
  /// kept as a knob and as the bench's pre-change reference).
  bool coordinate_group_commit = true;
  /// Snapshot + reset the WAL once it exceeds this many bytes.
  std::uint64_t snapshot_threshold_bytes = 1u << 20;
};

/// Counter snapshot; aggregated across replicas by the store's stats
/// surface, alongside the bus message counters.
struct StorageStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t batch_appends = 0;  // multi-record appends (one sync each)
  std::uint64_t fsyncs = 0;
  std::uint64_t snapshots_installed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recovery_replayed = 0;  // WAL records replayed, total
  std::uint64_t torn_tails_discarded = 0;

  StorageStats& operator+=(const StorageStats& o) {
    records_appended += o.records_appended;
    bytes_appended += o.bytes_appended;
    batch_appends += o.batch_appends;
    fsyncs += o.fsyncs;
    snapshots_installed += o.snapshots_installed;
    recoveries += o.recoveries;
    recovery_replayed += o.recovery_replayed;
    torn_tails_discarded += o.torn_tails_discarded;
    return *this;
  }
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// True when a crash of the owning replica must wipe volatile state.
  virtual bool Durable() const = 0;

  /// Rebuild the replica's state at (re)start.
  virtual Image Recover() = 0;

  /// An applied (i.e. version-accepted) write, before the ack.
  virtual void ApplyWrite(const std::string& key, std::uint64_t version,
                          std::int64_t value) = 0;

  /// A batch of applied writes, before the single ack that covers them
  /// all. The durable backend appends the batch with one write(2) and one
  /// fsync-policy decision (group commit at batch granularity); the
  /// default forwards record-by-record for backends without a batch path.
  virtual void ApplyWriteBatch(const std::vector<WalRecord>& records) {
    for (const WalRecord& r : records) ApplyWrite(r.key, r.version, r.value);
  }

  /// An applied configuration install, before the ack.
  virtual void ApplyConfig(std::uint64_t generation,
                           std::uint32_t config_id) = 0;

  /// Called after each apply with the replica's full state; the backend
  /// may compact (snapshot + log reset) when its log grew past threshold.
  virtual void MaybeCompact(const Image& image) { (void)image; }

  /// The owning replica fail-stopped: release file handles, drop nothing
  /// durable. Volatile state is wiped by the replica itself.
  virtual void OnCrash() {}

  virtual StorageStats Stats() const { return {}; }
};

/// The seed's semantics: nothing persists, nothing is lost.
std::unique_ptr<Backend> MakeMemoryBackend();

/// WAL + snapshot persistence under `dir` (created if absent), using the
/// unsharded layout (`wal.log` / `snapshot.bin`).
std::unique_ptr<Backend> MakeDurableBackend(std::string dir,
                                            DurabilityOptions options);

/// Persistence for one shard of a sharded replica: the same directory
/// holds `wal_<shard>.log` / `snapshot_<shard>.bin` per shard. The caller
/// (the store) pins the shard count in the directory's MANIFEST so
/// recovery can detect missing segments and count changes.
///
/// With a non-null `coordinator` and FsyncPolicy::kGroupCommit, fsync
/// decisions move off the shard thread entirely: the segment is appended
/// with kNever and registered with the replica's shared
/// GroupCommitCoordinator, which makes one fsync decision per window
/// across the whole shard set (see commit.hpp). kAlways ignores the
/// coordinator and stays inline-synchronous.
std::unique_ptr<Backend> MakeDurableShardBackend(
    std::string dir, DurabilityOptions options, std::size_t shard,
    std::shared_ptr<GroupCommitCoordinator> coordinator = nullptr);

}  // namespace qcnt::storage
