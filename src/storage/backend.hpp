// Pluggable per-replica storage backend.
//
// A ReplicaServer applies every mutation to its in-memory Image and then
// notifies its Backend *before* acking the client — write-ahead in the
// Gray/Lamport sense: the ack implies the backend accepted the record.
//
//   MemoryBackend  — no-op persistence; a crash only partitions the node
//                    (the seed's behavior, zero overhead on the hot path).
//   DurableBackend — the v2 engine: a bounded chain of WAL segments
//                    (rotation + wholesale reclamation), incremental
//                    checkpoints of only the keys dirtied since the last
//                    one, and a cold-read layer (per-checkpoint bloom
//                    filter + block index) so the value map can spill to
//                    sorted checkpoint blocks on disk. Checkpoint and
//                    recovery cost are proportional to the WAL tail, not
//                    total state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/commit.hpp"
#include "storage/image.hpp"
#include "storage/manifest.hpp"
#include "storage/recovery.hpp"
#include "storage/wal.hpp"

namespace qcnt::storage {

/// Knobs for the durable backend (embedded in runtime StoreOptions).
struct DurabilityOptions {
  /// Store-wide root; replica r keeps its files under
  /// `<directory>/replica_<r>` (per-shard subdirectories `shard_<s>/`
  /// hold the segment chain and checkpoint blocks).
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  std::chrono::microseconds group_commit_window{500};
  /// kGroupCommit only: true (default) routes the fsync decision through
  /// one per-replica GroupCommitCoordinator spanning every shard segment;
  /// false keeps the pre-coordinator behavior of each shard's WAL running
  /// its own inline window (one independent fsync stream per shard —
  /// kept as a knob and as the bench's pre-change reference).
  bool coordinate_group_commit = true;
  /// kGroupCommit + coordinator only: let the coordinator widen/narrow
  /// the fsync window between min/max from the observed arrival rate.
  /// Defaults off — `group_commit_window` stays the fixed baseline.
  bool adaptive_commit_window = false;
  std::chrono::microseconds commit_window_min{100};
  std::chrono::microseconds commit_window_max{4000};
  /// Checkpoint (flush the dirty set, drop sealed segments) once the
  /// shard's live segment chain exceeds this many bytes. The direct v2
  /// successor of v1's snapshot_threshold_bytes — but the work done per
  /// trigger is now O(tail), not O(total state).
  std::uint64_t checkpoint_tail_bytes = 1u << 20;
  /// Seal + rotate the active segment at this size, bounding any single
  /// log file and the unit of wholesale reclamation.
  std::uint64_t segment_bytes = 256u << 10;
  /// Merge the checkpoint chain into one base file once it grows past
  /// this many files (k-way newest-wins merge).
  std::size_t max_checkpoints = 6;
  /// Serve cold reads from checkpoint blocks (bloom + index + one block
  /// decode) instead of materializing every checkpointed key into the
  /// Image at recovery. With this on, the in-memory map holds roughly
  /// the keys written since the last checkpoint — a replica can hold far
  /// more keys on disk than in RAM — and recovery never scans the
  /// checkpoints at all (footer-only opens), making restart O(tail).
  bool spill_cold_reads = false;
};

/// Counter snapshot; aggregated across replicas by the store's stats
/// surface, alongside the bus message counters.
struct StorageStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t batch_appends = 0;  // multi-record appends (one sync each)
  std::uint64_t fsyncs = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recovery_replayed = 0;  // WAL records replayed, total
  std::uint64_t torn_tails_discarded = 0;
  // v2 engine counters.
  std::uint64_t segments_rotated = 0;    // active-segment seals
  std::uint64_t segments_compacted = 0;  // sealed segment files reclaimed
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_entries = 0;  // keys flushed across checkpoints
  std::uint64_t checkpoint_merges = 0;   // chain compactions (k-way merges)
  // Cold-read layer (spill mode): per-file probe outcomes.
  std::uint64_t cold_lookups = 0;   // Lookup calls that missed the image
  std::uint64_t bloom_hits = 0;     // filter passed and the key was there
  std::uint64_t bloom_misses = 0;   // filter rejected the probe (no I/O)
  std::uint64_t bloom_false_positives = 0;  // filter passed, key absent
  std::uint64_t migrations = 0;  // v1 shards upgraded in place

  StorageStats& operator+=(const StorageStats& o) {
    records_appended += o.records_appended;
    bytes_appended += o.bytes_appended;
    batch_appends += o.batch_appends;
    fsyncs += o.fsyncs;
    recoveries += o.recoveries;
    recovery_replayed += o.recovery_replayed;
    torn_tails_discarded += o.torn_tails_discarded;
    segments_rotated += o.segments_rotated;
    segments_compacted += o.segments_compacted;
    checkpoints_written += o.checkpoints_written;
    checkpoint_entries += o.checkpoint_entries;
    checkpoint_merges += o.checkpoint_merges;
    cold_lookups += o.cold_lookups;
    bloom_hits += o.bloom_hits;
    bloom_misses += o.bloom_misses;
    bloom_false_positives += o.bloom_false_positives;
    migrations += o.migrations;
    return *this;
  }
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// True when a crash of the owning replica must wipe volatile state.
  virtual bool Durable() const = 0;

  /// Rebuild the replica's state at (re)start. In spill mode the
  /// returned Image holds only the un-checkpointed tail; checkpointed
  /// keys are served through Lookup/ScanAbove.
  virtual Image Recover() = 0;

  /// An applied (i.e. version-accepted) write, before the ack.
  virtual void ApplyWrite(const std::string& key, std::uint64_t version,
                          std::int64_t value) = 0;

  /// A batch of applied writes, before the single ack that covers them
  /// all. The durable backend appends the batch with one write(2) and one
  /// fsync-policy decision (group commit at batch granularity); the
  /// default forwards record-by-record for backends without a batch path.
  virtual void ApplyWriteBatch(const std::vector<WalRecord>& records) {
    for (const WalRecord& r : records) ApplyWrite(r.key, r.version, r.value);
  }

  /// An applied configuration install, before the ack.
  virtual void ApplyConfig(std::uint64_t generation,
                           std::uint32_t config_id) = 0;

  /// Called after each apply; the backend may rotate the active segment,
  /// checkpoint the dirty set, or merge the checkpoint chain when its
  /// thresholds trip. In spill mode it may also evict clean (checkpointed)
  /// entries from `image` to bound the in-memory map.
  virtual void MaybeCompact(Image& image) { (void)image; }

  /// Force a checkpoint now regardless of thresholds (tests, benches,
  /// and catchup donors that want a tight tail). No-op for backends
  /// without checkpoints.
  virtual void ForceCheckpoint(Image& image) { (void)image; }

  /// Cold point read: the key's durable version when it is absent from
  /// the caller's image (spill mode only). False = not present anywhere
  /// in the checkpoint chain.
  virtual bool Lookup(const std::string& key, Versioned* out) {
    (void)key;
    (void)out;
    return false;
  }

  /// Visit checkpointed keys strictly greater than `cursor` in ascending
  /// order, at most `limit` of them, newest version per key (the catchup
  /// donor's cold half). An empty cursor starts at the first key,
  /// inclusive. Backends without spilled state visit nothing.
  virtual void ScanAbove(
      const std::string& cursor, std::size_t limit,
      const std::function<void(const std::string&, const Versioned&)>& fn) {
    (void)cursor;
    (void)limit;
    (void)fn;
  }

  /// Visit every checkpointed key (diagnostics / Peek in spill mode).
  virtual void ScanAll(
      const std::function<void(const std::string&, const Versioned&)>& fn) {
    (void)fn;
  }

  /// The owning replica fail-stopped: release file handles, drop nothing
  /// durable. Volatile state is wiped by the replica itself.
  virtual void OnCrash() {}

  virtual StorageStats Stats() const { return {}; }
};

/// The seed's semantics: nothing persists, nothing is lost.
std::unique_ptr<Backend> MakeMemoryBackend();

/// v2 persistence under `dir` (created if absent) for an unsharded
/// replica — internally shard 0 of a one-shard layout with a private
/// MANIFEST. A v1 unsharded store (`wal.log` / `snapshot.bin`) found in
/// `dir` is migrated in place on first Recover().
std::unique_ptr<Backend> MakeDurableBackend(std::string dir,
                                            DurabilityOptions options);

/// Persistence for one shard of a sharded replica: all shards share
/// `dir`'s MANIFEST (v2), which pins the shard count and names every
/// shard's segment chain + checkpoint chain. `manifest` must be the
/// replica's shared Manifest. A v1 shard (`wal_<s>.log` /
/// `snapshot_<s>.bin`) is migrated in place on first Recover().
///
/// With a non-null `coordinator` and FsyncPolicy::kGroupCommit, fsync
/// decisions move off the shard thread entirely: the active segment is
/// appended with kNever and registered with the replica's shared
/// GroupCommitCoordinator, which makes one fsync decision per window
/// across the whole shard set (see commit.hpp). kAlways ignores the
/// coordinator and stays inline-synchronous.
std::unique_ptr<Backend> MakeDurableShardBackend(
    std::shared_ptr<Manifest> manifest, DurabilityOptions options,
    std::size_t shard,
    std::shared_ptr<GroupCommitCoordinator> coordinator = nullptr);

}  // namespace qcnt::storage
