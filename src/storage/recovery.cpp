#include "storage/recovery.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "storage/crc32.hpp"
#include "storage/snapshot.hpp"

namespace qcnt::storage {

namespace {

// MANIFEST layout: "QMAN", format version u32, shard count u32,
// CRC32(version || count). Tiny on purpose — its only job is to pin the
// shard count so recovery can tell "fresh directory" from "directory
// missing segments".
constexpr char kManifestMagic[4] = {'Q', 'M', 'A', 'N'};
constexpr std::uint32_t kManifestVersion = 1;

void PutU32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

std::uint32_t GetU32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

// Snapshot + WAL replay for one (snapshot path, wal path) pair.
RecoveryManager::Result RecoverPaths(const std::string& snap_path,
                                     const std::string& wal_path) {
  RecoveryManager::Result result;
  if (std::optional<Image> snap = LoadSnapshotFile(snap_path)) {
    result.image = std::move(*snap);
    result.from_snapshot = true;
  }
  const Wal::ReplayResult replay =
      Wal::Replay(wal_path, [&](const WalRecord& r) {
        switch (r.type) {
          case WalRecord::Type::kWrite:
            result.image.ApplyWrite(r.key, r.version, r.value);
            break;
          case WalRecord::Type::kConfig:
            result.image.ApplyConfig(r.generation, r.config_id);
            break;
        }
      });
  result.replayed = replay.records;
  result.wal_valid_bytes = replay.valid_bytes;
  result.torn_tail = replay.torn_tail;
  return result;
}

}  // namespace

std::string RecoveryManager::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

std::string RecoveryManager::ShardWalPath(const std::string& dir,
                                          std::size_t shard) {
  return dir + "/wal_" + std::to_string(shard) + ".log";
}

std::string RecoveryManager::ShardSnapshotPath(const std::string& dir,
                                               std::size_t shard) {
  return dir + "/snapshot_" + std::to_string(shard) + ".bin";
}

std::string RecoveryManager::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}

void RecoveryManager::WriteManifest(const std::string& dir,
                                    std::size_t shard_count) {
  QCNT_CHECK(shard_count >= 1);
  std::vector<unsigned char> payload;
  PutU32(payload, kManifestVersion);
  PutU32(payload, static_cast<std::uint32_t>(shard_count));

  std::vector<unsigned char> file;
  file.insert(file.end(), kManifestMagic, kManifestMagic + 4);
  file.insert(file.end(), payload.begin(), payload.end());
  PutU32(file, Crc32(payload.data(), payload.size()));

  const std::string path = ManifestPath(dir);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  QCNT_CHECK_MSG(fd >= 0, "cannot open manifest temp file: " + tmp);
  const unsigned char* p = file.data();
  std::size_t n = file.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    QCNT_CHECK_MSG(w > 0, "manifest write failed");
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  QCNT_CHECK(::fsync(fd) == 0);
  ::close(fd);
  QCNT_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "manifest rename failed");
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::optional<std::size_t> RecoveryManager::ReadManifest(
    const std::string& dir) {
  std::ifstream in(ManifestPath(dir), std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  if (bytes.size() != 4 + 4 + 4 + 4) return std::nullopt;
  if (std::memcmp(bytes.data(), kManifestMagic, 4) != 0) return std::nullopt;
  const unsigned char* payload = bytes.data() + 4;
  if (Crc32(payload, 8) != GetU32(bytes.data() + 12)) return std::nullopt;
  if (GetU32(payload) != kManifestVersion) return std::nullopt;
  const std::uint32_t count = GetU32(payload + 4);
  if (count < 1) return std::nullopt;
  return static_cast<std::size_t>(count);
}

RecoveryManager::RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

RecoveryManager::Result RecoveryManager::Recover() const {
  return RecoverPaths(SnapshotPath(dir_), WalPath(dir_));
}

RecoveryManager::Result RecoveryManager::RecoverShard(
    std::size_t shard) const {
  return RecoverPaths(ShardSnapshotPath(dir_, shard),
                      ShardWalPath(dir_, shard));
}

RecoveryManager::LayoutCheck RecoveryManager::ValidateShardLayout(
    std::size_t expected_shards) const {
  LayoutCheck check;
  const bool manifest_file = std::filesystem::exists(ManifestPath(dir_));
  const std::optional<std::size_t> count = ReadManifest(dir_);
  if (!count) {
    if (manifest_file) {
      check.ok = false;
      check.error = "corrupt manifest: " + ManifestPath(dir_);
      return check;
    }
    if (std::filesystem::exists(WalPath(dir_))) {
      check.ok = false;
      check.error = "unsharded layout (wal.log, no manifest) in " + dir_ +
                    "; sharded replicas cannot adopt it";
      return check;
    }
    return check;  // fresh directory
  }
  check.manifest_present = true;
  check.shard_count = *count;
  if (*count != expected_shards) {
    check.ok = false;
    check.error = "shard count mismatch in " + dir_ + ": manifest has " +
                  std::to_string(*count) + ", configured " +
                  std::to_string(expected_shards);
    return check;
  }
  for (std::size_t s = 0; s < *count; ++s) {
    if (!std::filesystem::exists(ShardWalPath(dir_, s))) {
      check.ok = false;
      check.error = "missing WAL segment: " + ShardWalPath(dir_, s);
      return check;
    }
  }
  return check;
}

RecoveryManager::ReplicaResult RecoveryManager::RecoverReplica() const {
  ReplicaResult out;
  const bool manifest_file = std::filesystem::exists(ManifestPath(dir_));
  const std::optional<std::size_t> count = ReadManifest(dir_);
  if (!count) {
    if (manifest_file) {
      out.ok = false;
      out.error = "corrupt manifest: " + ManifestPath(dir_);
      return out;
    }
    // Legacy unsharded layout (or a fresh directory): the single log is
    // the whole replica.
    Result r = Recover();
    out.image = std::move(r.image);
    out.shard_count = 1;
    out.replayed = r.replayed;
    out.torn_segments = r.torn_tail ? 1 : 0;
    return out;
  }
  out.shard_count = *count;
  for (std::size_t s = 0; s < *count; ++s) {
    if (!std::filesystem::exists(ShardWalPath(dir_, s))) {
      out.ok = false;
      out.error = "missing WAL segment: " + ShardWalPath(dir_, s);
      return out;
    }
    Result r = RecoverShard(s);
    // Segments are key-disjoint, so this merge never conflicts on a key;
    // the store-wide (generation, config_id) stamp takes the max.
    for (const auto& [key, v] : r.image.data) {
      out.image.ApplyWrite(key, v.version, v.value);
    }
    out.image.ApplyConfig(r.image.generation, r.image.config_id);
    out.replayed += r.replayed;
    if (r.torn_tail) ++out.torn_segments;
  }
  return out;
}

}  // namespace qcnt::storage
