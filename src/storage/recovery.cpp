#include "storage/recovery.hpp"

#include <utility>

#include "storage/snapshot.hpp"

namespace qcnt::storage {

std::string RecoveryManager::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

RecoveryManager::RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

RecoveryManager::Result RecoveryManager::Recover() const {
  Result result;
  if (std::optional<Image> snap = LoadSnapshot(dir_)) {
    result.image = std::move(*snap);
    result.from_snapshot = true;
  }
  const Wal::ReplayResult replay =
      Wal::Replay(WalPath(dir_), [&](const WalRecord& r) {
        switch (r.type) {
          case WalRecord::Type::kWrite:
            result.image.ApplyWrite(r.key, r.version, r.value);
            break;
          case WalRecord::Type::kConfig:
            result.image.ApplyConfig(r.generation, r.config_id);
            break;
        }
      });
  result.replayed = replay.records;
  result.wal_valid_bytes = replay.valid_bytes;
  result.torn_tail = replay.torn_tail;
  return result;
}

}  // namespace qcnt::storage
