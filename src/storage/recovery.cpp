#include "storage/recovery.hpp"

#include <filesystem>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "storage/checkpoint.hpp"
#include "storage/crc32.hpp"
#include "storage/io_util.hpp"
#include "storage/manifest.hpp"
#include "storage/snapshot.hpp"

namespace qcnt::storage {

namespace {

// Legacy v1 MANIFEST layout: "QMAN", format version u32 = 1, shard count
// u32, CRC32(version || count). Kept only as a fixture writer: the live
// engine persists v2 manifests through storage::Manifest.
constexpr char kManifestMagic[4] = {'Q', 'M', 'A', 'N'};
constexpr std::uint32_t kLegacyManifestVersion = 1;

// Snapshot + WAL replay for one legacy (snapshot path, wal path) pair.
RecoveryManager::Result RecoverPaths(const std::string& snap_path,
                                     const std::string& wal_path) {
  RecoveryManager::Result result;
  if (std::optional<Image> snap = LoadSnapshotFile(snap_path)) {
    result.image = std::move(*snap);
    result.from_snapshot = true;
  }
  const Wal::ReplayResult replay =
      Wal::Replay(wal_path, [&](const WalRecord& r) {
        switch (r.type) {
          case WalRecord::Type::kWrite:
            result.image.ApplyWrite(r.key, r.version, r.value);
            break;
          case WalRecord::Type::kConfig:
            result.image.ApplyConfig(r.generation, r.config_id);
            break;
        }
      });
  result.replayed = replay.records;
  result.wal_valid_bytes = replay.valid_bytes;
  result.torn_tail = replay.torn_tail;
  return result;
}

}  // namespace

std::string RecoveryManager::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

std::string RecoveryManager::ShardWalPath(const std::string& dir,
                                          std::size_t shard) {
  return dir + "/wal_" + std::to_string(shard) + ".log";
}

std::string RecoveryManager::ShardSnapshotPath(const std::string& dir,
                                               std::size_t shard) {
  return dir + "/snapshot_" + std::to_string(shard) + ".bin";
}

std::string RecoveryManager::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}

void RecoveryManager::WriteManifest(const std::string& dir,
                                    std::size_t shard_count) {
  QCNT_CHECK(shard_count >= 1);
  std::vector<unsigned char> payload;
  PutU32(payload, kLegacyManifestVersion);
  PutU32(payload, static_cast<std::uint32_t>(shard_count));

  std::vector<unsigned char> file;
  file.insert(file.end(), kManifestMagic, kManifestMagic + 4);
  file.insert(file.end(), payload.begin(), payload.end());
  PutU32(file, Crc32(payload.data(), payload.size()));
  AtomicWriteFile(ManifestPath(dir), file, "manifest");
}

std::optional<std::size_t> RecoveryManager::ReadManifest(
    const std::string& dir) {
  return Manifest::ReadShardCount(dir);
}

RecoveryManager::RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

RecoveryManager::Result RecoveryManager::Recover() const {
  return RecoverPaths(SnapshotPath(dir_), WalPath(dir_));
}

RecoveryManager::Result RecoveryManager::RecoverShard(
    std::size_t shard) const {
  return RecoverPaths(ShardSnapshotPath(dir_, shard),
                      ShardWalPath(dir_, shard));
}

RecoveryManager::LayoutCheck RecoveryManager::ValidateShardLayout(
    std::size_t expected_shards) const {
  LayoutCheck check;
  const bool manifest_file = std::filesystem::exists(ManifestPath(dir_));
  const std::optional<std::size_t> count = Manifest::ReadShardCount(dir_);
  if (!count) {
    if (manifest_file) {
      check.ok = false;
      check.error = "corrupt manifest: " + ManifestPath(dir_);
      return check;
    }
    if (std::filesystem::exists(WalPath(dir_)) && expected_shards != 1) {
      check.ok = false;
      check.error = "unsharded layout (wal.log, no manifest) in " + dir_ +
                    "; its keys were never striped, so a " +
                    std::to_string(expected_shards) +
                    "-shard replica cannot adopt it";
      return check;
    }
    return check;  // fresh directory (or single-shard legacy: migrates)
  }
  check.manifest_present = true;
  check.shard_count = *count;
  if (*count != expected_shards) {
    check.ok = false;
    check.error = "shard count mismatch in " + dir_ + ": manifest has " +
                  std::to_string(*count) + ", configured " +
                  std::to_string(expected_shards);
    return check;
  }

  const Manifest manifest(dir_, expected_shards);
  if (!manifest.info().ok) {
    check.ok = false;
    check.error = manifest.info().error;
    return check;
  }
  for (std::size_t s = 0; s < *count; ++s) {
    const ShardFiles files = manifest.Shard(s);
    if (!files.present) {
      // v1 manifest (or a shard that never committed its v2 entry): the
      // legacy segment must exist — except under a v2 manifest, where a
      // non-present shard is simply one that has not been opened yet.
      if (manifest.info().version == 1 &&
          !std::filesystem::exists(ShardWalPath(dir_, s))) {
        check.ok = false;
        check.error = "missing WAL segment: " + ShardWalPath(dir_, s);
        return check;
      }
      continue;
    }
    for (const std::uint64_t id : files.segments) {
      const std::string path = Manifest::SegmentPath(dir_, s, id);
      if (!std::filesystem::exists(path)) {
        check.ok = false;
        check.error = "missing WAL segment: " + path;
        return check;
      }
    }
    for (const std::uint64_t id : files.checkpoints) {
      const std::string path = Manifest::CheckpointPath(dir_, s, id);
      if (!std::filesystem::exists(path)) {
        check.ok = false;
        check.error = "missing checkpoint: " + path;
        return check;
      }
    }
  }
  return check;
}

RecoveryManager::ReplicaResult RecoveryManager::RecoverReplica() const {
  ReplicaResult out;
  const bool manifest_file = std::filesystem::exists(ManifestPath(dir_));
  const std::optional<std::size_t> count = Manifest::ReadShardCount(dir_);
  if (!count) {
    if (manifest_file) {
      out.ok = false;
      out.error = "corrupt manifest: " + ManifestPath(dir_);
      return out;
    }
    // Legacy unsharded layout (or a fresh directory): the single log is
    // the whole replica.
    Result r = Recover();
    out.image = std::move(r.image);
    out.shard_count = 1;
    out.replayed = r.replayed;
    out.torn_segments = r.torn_tail ? 1 : 0;
    return out;
  }

  const Manifest manifest(dir_, *count);
  if (!manifest.info().ok) {
    out.ok = false;
    out.error = manifest.info().error;
    return out;
  }
  out.shard_count = *count;
  for (std::size_t s = 0; s < *count; ++s) {
    const ShardFiles files = manifest.Shard(s);
    Image shard_image;
    std::uint64_t replayed = 0;
    std::size_t torn = 0;

    if (!files.present) {
      // Pre-migration shard: its state is the legacy pair. A v1 manifest
      // promises the segment exists; refuse if it vanished.
      if (manifest.info().version == 1 &&
          !std::filesystem::exists(ShardWalPath(dir_, s))) {
        out.ok = false;
        out.error = "missing WAL segment: " + ShardWalPath(dir_, s);
        return out;
      }
      Result r = RecoverShard(s);
      shard_image = std::move(r.image);
      replayed = r.replayed;
      torn = r.torn_tail ? 1 : 0;
    } else {
      // v2 shard: materialize the checkpoint chain oldest → newest, then
      // replay the segment chain over it.
      for (const std::uint64_t id : files.checkpoints) {
        const std::string path = Manifest::CheckpointPath(dir_, s, id);
        const std::unique_ptr<CheckpointReader> reader =
            CheckpointReader::Open(path);
        if (reader == nullptr) {
          out.ok = false;
          out.error = "missing or corrupt checkpoint: " + path;
          return out;
        }
        reader->Scan([&shard_image](const std::string& key,
                                    const Versioned& v) {
          shard_image.ApplyWrite(key, v.version, v.value);
        });
        shard_image.ApplyConfig(reader->generation(), reader->config_id());
      }
      for (const std::uint64_t id : files.segments) {
        const std::string path = Manifest::SegmentPath(dir_, s, id);
        if (!std::filesystem::exists(path)) {
          out.ok = false;
          out.error = "missing WAL segment: " + path;
          return out;
        }
        const Wal::ReplayResult replay =
            Wal::Replay(path, [&shard_image](const WalRecord& r) {
              switch (r.type) {
                case WalRecord::Type::kWrite:
                  shard_image.ApplyWrite(r.key, r.version, r.value);
                  break;
                case WalRecord::Type::kConfig:
                  shard_image.ApplyConfig(r.generation, r.config_id);
                  break;
              }
            });
        replayed += replay.records;
        if (replay.torn_tail) ++torn;
      }
    }

    // Shards are key-disjoint, so this merge never conflicts on a key;
    // the store-wide (generation, config_id) stamp takes the max.
    for (const auto& [key, v] : shard_image.data) {
      out.image.ApplyWrite(key, v.version, v.value);
    }
    out.image.ApplyConfig(shard_image.generation, shard_image.config_id);
    out.replayed += replayed;
    out.torn_segments += torn;
  }
  return out;
}

}  // namespace qcnt::storage
