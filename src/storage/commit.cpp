#include "storage/commit.hpp"

#include <algorithm>

#include "storage/wal.hpp"

namespace qcnt::storage {

GroupCommitCoordinator::GroupCommitCoordinator(Options options)
    : options_(options), window_us_(options.window.count()) {
  committer_ = std::thread([this] { Loop(); });
}

GroupCommitCoordinator::~GroupCommitCoordinator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

void GroupCommitCoordinator::Attach(Wal* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wals_.push_back(wal);
}

void GroupCommitCoordinator::Detach(Wal* wal) {
  std::unique_lock<std::mutex> lock(mu_);
  wals_.erase(std::remove(wals_.begin(), wals_.end(), wal), wals_.end());
  // A pass snapshotting the segment list before this erase may still be
  // walking it; wait it out so the caller can destroy the Wal.
  cv_.wait(lock, [this] { return !in_pass_; });
}

void GroupCommitCoordinator::MarkDirty() {
  marks_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_ = true;
  }
  cv_.notify_all();
}

std::chrono::microseconds GroupCommitCoordinator::NextWindow(
    std::chrono::microseconds current, std::uint64_t marks,
    const Options& options) {
  if (!options.adaptive) return options.window;
  if (marks >= kWidenMarks) {
    return std::min(options.max_window, current * 2);
  }
  if (marks <= kNarrowMarks) {
    return std::max(options.min_window, current / 2);
  }
  return current;
}

void GroupCommitCoordinator::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || dirty_; });
    if (stop_) return;
    dirty_ = false;
    const std::chrono::microseconds window(
        window_us_.load(std::memory_order_relaxed));
    // Let the window fill: appends landing during the sleep ride this
    // ticket instead of opening the next one.
    lock.unlock();
    std::this_thread::sleep_for(window);
    lock.lock();
    in_pass_ = true;
    std::vector<Wal*> wals = wals_;
    lock.unlock();
    std::uint64_t synced = 0;
    for (Wal* wal : wals) {
      if (wal->SyncIfDirty()) ++synced;
    }
    // Everything marked since the previous pass rode this ticket; that
    // count is the arrival-rate signal the next window adapts to.
    const std::uint64_t marks = marks_.exchange(0, std::memory_order_relaxed);
    window_us_.store(NextWindow(window, marks, options_).count(),
                     std::memory_order_relaxed);
    lock.lock();
    in_pass_ = false;
    if (synced > 0) {
      passes_.fetch_add(1, std::memory_order_relaxed);
      wals_synced_.fetch_add(synced, std::memory_order_relaxed);
    }
    cv_.notify_all();  // release Detach waiters
  }
}

}  // namespace qcnt::storage
