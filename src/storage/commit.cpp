#include "storage/commit.hpp"

#include <algorithm>

#include "storage/wal.hpp"

namespace qcnt::storage {

GroupCommitCoordinator::GroupCommitCoordinator(
    std::chrono::microseconds window)
    : window_(window) {
  committer_ = std::thread([this] { Loop(); });
}

GroupCommitCoordinator::~GroupCommitCoordinator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

void GroupCommitCoordinator::Attach(Wal* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wals_.push_back(wal);
}

void GroupCommitCoordinator::Detach(Wal* wal) {
  std::unique_lock<std::mutex> lock(mu_);
  wals_.erase(std::remove(wals_.begin(), wals_.end(), wal), wals_.end());
  // A pass snapshotting the segment list before this erase may still be
  // walking it; wait it out so the caller can destroy the Wal.
  cv_.wait(lock, [this] { return !in_pass_; });
}

void GroupCommitCoordinator::MarkDirty() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_ = true;
  }
  cv_.notify_all();
}

void GroupCommitCoordinator::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || dirty_; });
    if (stop_) return;
    dirty_ = false;
    // Let the window fill: appends landing during the sleep ride this
    // ticket instead of opening the next one.
    lock.unlock();
    std::this_thread::sleep_for(window_);
    lock.lock();
    in_pass_ = true;
    std::vector<Wal*> wals = wals_;
    lock.unlock();
    std::uint64_t synced = 0;
    for (Wal* wal : wals) {
      if (wal->SyncIfDirty()) ++synced;
    }
    lock.lock();
    in_pass_ = false;
    if (synced > 0) {
      passes_.fetch_add(1, std::memory_order_relaxed);
      wals_synced_.fetch_add(synced, std::memory_order_relaxed);
    }
    cv_.notify_all();  // release Detach waiters
  }
}

}  // namespace qcnt::storage
