// Append-only write-ahead log.
//
// Frame layout (little-endian):
//
//   +----------------+----------------+=========================+
//   | payload length | CRC32(payload) |         payload         |
//   |    4 bytes     |    4 bytes     |  `payload length` bytes |
//   +----------------+----------------+=========================+
//
// Payload layout:
//
//   type:u8  version:u64  value:i64  generation:u64  config_id:u32
//   keylen:u32  key bytes
//
// Replay walks frames from the front and stops at the first frame whose
// header is truncated, whose length is implausible, or whose CRC does not
// match — a torn final record from a crash mid-append is thereby discarded
// rather than corrupting recovery (the quorum protocol tolerates the lost
// tail: a replica that misses writes is exactly the paper's failure model).
//
// Durability policy: every Append write(2)s the frame immediately (so a
// *process* crash loses nothing once the syscall returns); fsync timing is
// governed by FsyncPolicy and decides what a *machine* crash can lose.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace qcnt::storage {

enum class FsyncPolicy : std::uint8_t {
  kAlways,       // fsync after every record (commit is durable when acked)
  kGroupCommit,  // fsync at most once per window; the window's tail is at risk
  kNever,        // never fsync; the OS decides (fastest, weakest)
};

const char* ToString(FsyncPolicy policy);

struct WalRecord {
  enum class Type : std::uint8_t { kWrite = 1, kConfig = 2 };
  Type type = Type::kWrite;
  std::string key;
  std::uint64_t version = 0;
  std::int64_t value = 0;
  std::uint64_t generation = 0;
  std::uint32_t config_id = 0;
};

class Wal {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kAlways;
    std::chrono::microseconds group_commit_window{500};
  };

  /// Opens (creating if absent) `path` and positions appends at its end.
  Wal(std::string path, Options options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Frame, write, and (per policy) fsync one record.
  void Append(const WalRecord& record);

  /// Frame every record into one buffer, write it with a single write(2),
  /// and run the fsync policy once for the whole batch — the group-commit
  /// unit is the batch, so under kAlways a multi-record commit costs one
  /// fsync instead of one per record. Frames are identical to repeated
  /// Append calls; Replay cannot tell the difference, and a torn tail cuts
  /// the batch to a frame-aligned prefix like any other crash.
  void AppendBatch(const std::vector<WalRecord>& records);

  /// Force an fsync covering everything appended so far.
  void Sync();

  /// Fsync only when records were appended since the last sync; returns
  /// whether an fsync was issued. Safe to call from a thread other than
  /// the appender (the group-commit coordinator's committer thread):
  /// fd lifecycle is guarded by an internal mutex, and a concurrent
  /// write(2) + fsync(2) pair is well-defined — the append that raced
  /// past the fsync simply re-arms the dirty flag for the next pass.
  bool SyncIfDirty();

  /// Discard everything after `offset` bytes (recovery cuts a torn tail).
  void TruncateTo(std::uint64_t offset);

  /// Empty the log (after a snapshot made its contents redundant).
  void Reset();

  /// Flush and close the file; further Appends are invalid.
  void Close();

  std::uint64_t SizeBytes() const { return size_; }
  std::uint64_t RecordsAppended() const { return records_; }
  std::uint64_t BytesAppended() const { return bytes_appended_; }
  std::uint64_t Fsyncs() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }
  const std::string& Path() const { return path_; }

  struct ReplayResult {
    std::uint64_t records = 0;      // frames applied
    std::uint64_t valid_bytes = 0;  // prefix length of well-formed frames
    bool torn_tail = false;         // trailing bytes failed length/CRC checks
  };

  /// Replay `path` front to back, invoking `apply` per valid record. A
  /// missing file is an empty log. Stops at the first invalid frame.
  static ReplayResult Replay(
      const std::string& path,
      const std::function<void(const WalRecord&)>& apply);

 private:
  void DoSync();
  /// DoSync with sync_mu_ already held.
  void SyncLocked();
  void MaybeSync();

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_appended_ = 0;
  // Shared with a possible background committer thread (SyncIfDirty):
  // sync_mu_ guards the fd lifecycle against close/truncate, the atomics
  // make the dirty flag and counter safe to read from either side.
  // Append/AppendBatch deliberately do NOT take sync_mu_ — a write(2)
  // concurrent with fsync(2) on the same fd is fine, and the appender
  // must never stall behind a sync in progress.
  mutable std::mutex sync_mu_;
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<bool> sync_pending_{false};  // appended since the last fsync
  std::chrono::steady_clock::time_point window_start_{};
};

}  // namespace qcnt::storage
