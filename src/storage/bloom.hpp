// Bloom filter over the keys of one checkpoint file.
//
// A cold read probes checkpoint files newest-first; without a filter every
// probe of a file that does not hold the key costs a block read. The bloom
// page (ScalienDB keeps one per storage page for the same reason) turns
// the common miss into a few bit tests: ~10 bits and k=6 hashes per key
// put the false-positive rate near 1%, so all but a sliver of the misses
// never touch the disk.
//
// Double hashing (Kirsch–Mitzenmacher): two 64-bit FNV-1a variants
// generate all k probe positions as h1 + i*h2, which is as good as k
// independent hashes for filter purposes and keeps Add/MayContain cheap.
//
// The bit array serializes verbatim into the checkpoint file (the reader
// re-wraps the bytes without rehashing anything), so the in-memory and
// on-disk forms are the same object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qcnt::storage {

class BloomFilter {
 public:
  static constexpr std::size_t kBitsPerKey = 10;
  static constexpr std::uint32_t kHashes = 6;

  /// Sized for `expected_keys` insertions at ~1% false positives. An
  /// estimate is fine: oversizing only wastes bits, undersizing only
  /// raises the false-positive rate — never correctness.
  explicit BloomFilter(std::size_t expected_keys) {
    std::size_t bits = expected_keys * kBitsPerKey;
    if (bits < 64) bits = 64;
    bits_.assign((bits + 7) / 8, 0);
  }

  /// Wrap previously serialized bits (a checkpoint reader's view).
  explicit BloomFilter(std::vector<std::uint8_t> bits)
      : bits_(std::move(bits)) {
    if (bits_.empty()) bits_.assign(8, 0);
  }

  void Add(const std::string& key) {
    std::uint64_t h1 = 0, h2 = 0;
    Hash(key, h1, h2);
    const std::uint64_t nbits = bits_.size() * 8;
    for (std::uint32_t i = 0; i < kHashes; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % nbits;
      bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }

  /// False = definitely absent; true = probably present.
  bool MayContain(const std::string& key) const {
    std::uint64_t h1 = 0, h2 = 0;
    Hash(key, h1, h2);
    const std::uint64_t nbits = bits_.size() * 8;
    for (std::uint32_t i = 0; i < kHashes; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % nbits;
      if (!(bits_[bit / 8] & (1u << (bit % 8)))) return false;
    }
    return true;
  }

  const std::vector<std::uint8_t>& Bits() const { return bits_; }

 private:
  static void Hash(const std::string& key, std::uint64_t& h1,
                   std::uint64_t& h2) {
    // Two FNV-1a streams with distinct offset bases.
    std::uint64_t a = 1469598103934665603ull;
    std::uint64_t b = 0x9ae16a3b2f90404full;
    for (const char c : key) {
      a = (a ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
      b = (b ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
      b ^= b >> 29;
    }
    h1 = a;
    h2 = b | 1;  // odd: never degenerate the probe stride
  }

  std::vector<std::uint8_t> bits_;
};

}  // namespace qcnt::storage
