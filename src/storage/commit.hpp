// Cross-shard group-commit coordination.
//
// A sharded durable replica owns one WAL segment per shard. With the
// per-segment group-commit policy each shard thread made its *own* fsync
// decision inside Append — so a batch touching S shards paid up to S
// inline fsyncs, every one of them stalling a shard worker, and a quiet
// segment's tail was never synced at all (the window check only ran on
// the next append).
//
// The coordinator replaces those per-segment decisions with one shared
// commit ticket per replica: shard threads append with FsyncPolicy::
// kNever and just mark the ticket dirty (an atomic flag + a notify —
// never a syscall on the append path). A dedicated committer thread
// wakes, lets the group-commit window fill so concurrent shards pile
// onto the same ticket, then walks every registered segment and fsyncs
// exactly the dirty ones. One fsync *decision* per window covers the
// whole shard set, and shard workers never block behind the disk.
//
// Durability bound is unchanged from per-segment group commit: an acked
// write can predate its fsync by at most the window (plus the sync pass
// itself) — the classic group-commit trade, now paid once per replica
// instead of once per shard.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace qcnt::storage {

class Wal;

class GroupCommitCoordinator {
 public:
  explicit GroupCommitCoordinator(std::chrono::microseconds window);
  ~GroupCommitCoordinator();

  GroupCommitCoordinator(const GroupCommitCoordinator&) = delete;
  GroupCommitCoordinator& operator=(const GroupCommitCoordinator&) = delete;

  /// Register a segment for commit passes. The caller keeps ownership;
  /// it must Detach before destroying the Wal.
  void Attach(Wal* wal);

  /// Deregister a segment. Blocks until any in-flight commit pass that
  /// may hold the segment has finished, so the Wal is safe to destroy
  /// when this returns.
  void Detach(Wal* wal);

  /// Mark the shared ticket dirty: something was appended somewhere.
  /// Cheap and non-blocking — never waits on a sync in progress.
  void MarkDirty();

  /// Commit passes that fsynced at least one segment — the number of
  /// fsync *decisions* taken for the whole shard set.
  std::uint64_t Passes() const {
    return passes_.load(std::memory_order_relaxed);
  }

  /// Individual segment fsyncs issued across all passes.
  std::uint64_t WalsSynced() const {
    return wals_synced_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  const std::chrono::microseconds window_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Wal*> wals_;
  bool dirty_ = false;
  bool in_pass_ = false;  // committer is touching segments (Detach waits)
  bool stop_ = false;
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> wals_synced_{0};
  std::thread committer_;
};

}  // namespace qcnt::storage
