// Cross-shard group-commit coordination.
//
// A sharded durable replica owns one WAL segment per shard. With the
// per-segment group-commit policy each shard thread made its *own* fsync
// decision inside Append — so a batch touching S shards paid up to S
// inline fsyncs, every one of them stalling a shard worker, and a quiet
// segment's tail was never synced at all (the window check only ran on
// the next append).
//
// The coordinator replaces those per-segment decisions with one shared
// commit ticket per replica: shard threads append with FsyncPolicy::
// kNever and just mark the ticket dirty (an atomic flag + a notify —
// never a syscall on the append path). A dedicated committer thread
// wakes, lets the group-commit window fill so concurrent shards pile
// onto the same ticket, then walks every registered segment and fsyncs
// exactly the dirty ones. One fsync *decision* per window covers the
// whole shard set, and shard workers never block behind the disk.
//
// Adaptive windows (optional): the fixed window is a compromise — too
// narrow under load (fsyncs amortize few appends), too wide when idle
// (every commit waits the full window for nothing). With
// `Options::adaptive` the committer re-sizes the window after each pass
// from the observed arrival rate: many appends rode the last ticket →
// widen (more amortization per fsync); a near-empty ticket → narrow
// (less added latency). The decision rule is a pure function
// (`NextWindow`) so tests pin it down without threads or clocks.
//
// Durability bound is unchanged from per-segment group commit: an acked
// write can predate its fsync by at most the window (plus the sync pass
// itself) — the classic group-commit trade, now paid once per replica
// instead of once per shard, with the window floor/ceiling bounding the
// adaptive case.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace qcnt::storage {

class Wal;

class GroupCommitCoordinator {
 public:
  struct Options {
    std::chrono::microseconds window{500};
    /// Re-size the window from observed arrival rate. Off by default:
    /// the fixed window is the measured PR-8 baseline.
    bool adaptive = false;
    std::chrono::microseconds min_window{100};
    std::chrono::microseconds max_window{4000};
  };

  /// Appends marked during one pass at or above this ride-along count
  /// widen the window; at or below the narrow count it shrinks back.
  static constexpr std::uint64_t kWidenMarks = 8;
  static constexpr std::uint64_t kNarrowMarks = 1;

  explicit GroupCommitCoordinator(Options options);
  /// Fixed-window convenience (the pre-adaptive interface).
  explicit GroupCommitCoordinator(std::chrono::microseconds window)
      : GroupCommitCoordinator(Options{window, false, window, window}) {}
  ~GroupCommitCoordinator();

  GroupCommitCoordinator(const GroupCommitCoordinator&) = delete;
  GroupCommitCoordinator& operator=(const GroupCommitCoordinator&) = delete;

  /// Register a segment for commit passes. The caller keeps ownership;
  /// it must Detach before destroying the Wal.
  void Attach(Wal* wal);

  /// Deregister a segment. Blocks until any in-flight commit pass that
  /// may hold the segment has finished, so the Wal is safe to destroy
  /// when this returns.
  void Detach(Wal* wal);

  /// Mark the shared ticket dirty: something was appended somewhere.
  /// Cheap and non-blocking — never waits on a sync in progress.
  void MarkDirty();

  /// Commit passes that fsynced at least one segment — the number of
  /// fsync *decisions* taken for the whole shard set.
  std::uint64_t Passes() const {
    return passes_.load(std::memory_order_relaxed);
  }

  /// Individual segment fsyncs issued across all passes.
  std::uint64_t WalsSynced() const {
    return wals_synced_.load(std::memory_order_relaxed);
  }

  /// The window the next pass will sleep (moves only in adaptive mode).
  std::chrono::microseconds CurrentWindow() const {
    return std::chrono::microseconds(
        window_us_.load(std::memory_order_relaxed));
  }

  /// The adaptive step, factored out for direct testing: given the window
  /// just slept and the appends that marked the ticket during it, the
  /// window for the next pass. Doubles toward max_window at or above
  /// kWidenMarks, halves toward min_window at or below kNarrowMarks,
  /// holds otherwise; returns `options.window` untouched when adaptation
  /// is off.
  static std::chrono::microseconds NextWindow(std::chrono::microseconds
                                                  current,
                                              std::uint64_t marks,
                                              const Options& options);

 private:
  void Loop();

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Wal*> wals_;
  bool dirty_ = false;
  bool in_pass_ = false;  // committer is touching segments (Detach waits)
  bool stop_ = false;
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> wals_synced_{0};
  std::atomic<std::uint64_t> marks_{0};  // MarkDirty calls since last pass
  std::atomic<std::int64_t> window_us_;
  std::thread committer_;
};

}  // namespace qcnt::storage
