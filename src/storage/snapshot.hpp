// Snapshot: a point-in-time Image serialized to one file.
//
// File layout: magic "QSNP", format version, then the payload
// (generation, config_id, entry count, entries), then CRC32(payload).
// Installation is atomic: write to `snapshot.tmp` in the same directory,
// fsync, rename over `snapshot.bin`, fsync the directory — a crash at any
// point leaves either the old snapshot or the new one, never a mix.
//
// Compaction contract: because recovery replays the WAL *over* the
// snapshot with the same newer-version-wins merge the live server uses,
// a snapshot taken at any prefix of the log is safe — replaying records
// the snapshot already covers is idempotent. The log can therefore be
// reset right after a snapshot installs without an ordering dance.
#pragma once

#include <optional>
#include <string>

#include "storage/image.hpp"

namespace qcnt::storage {

/// `snapshot.bin` inside `dir`.
std::string SnapshotPath(const std::string& dir);

/// Atomically install `image` as `dir`'s snapshot.
void WriteSnapshot(const std::string& dir, const Image& image);

/// Load `dir`'s snapshot; nullopt when absent or failing validation
/// (bad magic, short file, CRC mismatch) — recovery then starts empty.
std::optional<Image> LoadSnapshot(const std::string& dir);

}  // namespace qcnt::storage
