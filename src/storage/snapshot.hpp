// Snapshot: a point-in-time Image serialized to one file.
//
// File layout: magic "QSNP", format version, then the payload
// (generation, config_id, entry count, entries), then CRC32(payload).
// Installation is atomic: write to `snapshot.tmp` in the same directory,
// fsync, rename over `snapshot.bin`, fsync the directory — a crash at any
// point leaves either the old snapshot or the new one, never a mix.
//
// Compaction contract: because recovery replays the WAL *over* the
// snapshot with the same newer-version-wins merge the live server uses,
// a snapshot taken at any prefix of the log is safe — replaying records
// the snapshot already covers is idempotent. The log can therefore be
// reset right after a snapshot installs without an ordering dance.
#pragma once

#include <optional>
#include <string>

#include "storage/image.hpp"

namespace qcnt::storage {

/// `snapshot.bin` inside `dir`.
std::string SnapshotPath(const std::string& dir);

/// Atomically install `image` at `path` (tmp = path + ".tmp", fsync,
/// rename, fsync parent directory). Sharded replicas keep one snapshot
/// file per shard in the same directory, so the path is caller-chosen.
void WriteSnapshotFile(const std::string& path, const Image& image);

/// Load the snapshot at `path`; nullopt when absent or failing validation
/// (bad magic, short file, CRC mismatch) — recovery then starts empty.
std::optional<Image> LoadSnapshotFile(const std::string& path);

/// Atomically install `image` as `dir`'s (unsharded) snapshot.
void WriteSnapshot(const std::string& dir, const Image& image);

/// Load `dir`'s (unsharded) snapshot.
std::optional<Image> LoadSnapshot(const std::string& dir);

}  // namespace qcnt::storage
