#include "storage/segment.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.hpp"

namespace qcnt::storage {

SegmentedLog::SegmentedLog(std::shared_ptr<Manifest> manifest,
                           std::size_t shard, ShardFiles* files,
                           Wal::Options wal_options,
                           std::shared_ptr<GroupCommitCoordinator> coordinator)
    : manifest_(std::move(manifest)),
      shard_(shard),
      files_(files),
      wal_options_(wal_options),
      coordinator_(std::move(coordinator)) {}

SegmentedLog::~SegmentedLog() { Release(); }

SegmentedLog::ReplayStats SegmentedLog::OpenAndReplay(
    const std::function<void(const WalRecord&)>& apply) {
  QCNT_CHECK_MSG(wal_ == nullptr, "SegmentedLog opened twice");
  ReplayStats stats;
  sealed_bytes_ = 0;

  if (files_->segments.empty()) {
    const std::uint64_t id = files_->next_file_id++;
    files_->segments.push_back(id);
    files_->present = true;
    // Create the file before the manifest names it: an unreferenced empty
    // segment is recoverable garbage, a referenced missing file is not.
    OpenActive(id, /*create=*/true);
    manifest_->Update(shard_, *files_);
    return stats;
  }

  std::uint64_t active_valid_bytes = 0;
  for (std::size_t i = 0; i < files_->segments.size(); ++i) {
    const std::string path =
        Manifest::SegmentPath(manifest_->dir(), shard_, files_->segments[i]);
    const Wal::ReplayResult r = Wal::Replay(path, apply);
    stats.records += r.records;
    if (r.torn_tail) ++stats.torn_tails;
    if (i + 1 == files_->segments.size()) {
      active_valid_bytes = r.valid_bytes;
    } else {
      // A torn sealed segment still contributed its valid prefix; the
      // file disappears wholesale at the next checkpoint.
      sealed_bytes_ += r.valid_bytes;
    }
  }

  OpenActive(files_->segments.back(), /*create=*/false);
  if (wal_->SizeBytes() > active_valid_bytes) {
    // Cut the torn frame so fresh appends don't land after garbage. Done
    // after open (the Wal owns the fd) but before coordinator attach.
    wal_->TruncateTo(active_valid_bytes);
  }
  return stats;
}

void SegmentedLog::OpenActive(std::uint64_t id, bool create) {
  const std::string path = Manifest::SegmentPath(manifest_->dir(), shard_, id);
  (void)create;  // Wal's O_CREAT covers both cases
  auto next = std::make_unique<Wal>(path, wal_options_);
  SwapActive(std::move(next));
}

void SegmentedLog::SwapActive(std::unique_ptr<Wal> next) {
  if (wal_ && Coordinated()) coordinator_->Detach(wal_.get());
  {
    // Base rollup and pointer swap together, so a concurrent Fsyncs()
    // never sees the sealed segment's count twice (or not at all).
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (wal_) {
      fsyncs_base_.fetch_add(wal_->Fsyncs(), std::memory_order_relaxed);
      bytes_appended_base_ += wal_->BytesAppended();
    }
    wal_ = std::move(next);
  }
  if (wal_ && Coordinated()) coordinator_->Attach(wal_.get());
}

void SegmentedLog::Append(const WalRecord& record) {
  QCNT_CHECK_MSG(wal_ != nullptr, "segmented log used before OpenAndReplay");
  wal_->Append(record);
  if (Coordinated()) coordinator_->MarkDirty();
}

void SegmentedLog::AppendBatch(const std::vector<WalRecord>& records) {
  QCNT_CHECK_MSG(wal_ != nullptr, "segmented log used before OpenAndReplay");
  wal_->AppendBatch(records);
  if (Coordinated()) coordinator_->MarkDirty();
}

void SegmentedLog::Rotate() {
  if (!wal_) return;
  const std::uint64_t sealed_size = wal_->SizeBytes();
  const std::uint64_t id = files_->next_file_id++;
  files_->segments.push_back(id);
  // Same ordering as first open: file exists before the manifest commit
  // names it, and the old active handle is swapped out only after the
  // commit — a crash anywhere here recovers the full chain.
  auto next = std::make_unique<Wal>(
      Manifest::SegmentPath(manifest_->dir(), shard_, id), wal_options_);
  manifest_->Update(shard_, *files_);
  SwapActive(std::move(next));
  sealed_bytes_ += sealed_size;
}

std::size_t SegmentedLog::DropSealed() {
  QCNT_CHECK_MSG(files_->segments.size() == 1,
                 "DropSealed before the manifest shrank the chain");
  std::size_t dropped = 0;
  // The manifest no longer references anything but the active id; delete
  // every other seg_ file in the shard directory.
  namespace fs = std::filesystem;
  const std::string dir = Manifest::ShardDirPath(manifest_->dir(), shard_);
  const std::string keep =
      Manifest::SegmentPath(manifest_->dir(), shard_, files_->segments[0]);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg_", 0) != 0) continue;
    if (entry.path().string() == keep) continue;
    if (fs::remove(entry.path(), ec)) ++dropped;
  }
  sealed_bytes_ = 0;
  return dropped;
}

std::uint64_t SegmentedLog::Fsyncs() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return fsyncs_base_.load(std::memory_order_relaxed) +
         (wal_ ? wal_->Fsyncs() : 0);
}

void SegmentedLog::Release() {
  if (!wal_) return;
  if (Coordinated()) coordinator_->Detach(wal_.get());
  std::lock_guard<std::mutex> lock(wal_mu_);
  fsyncs_base_.fetch_add(wal_->Fsyncs(), std::memory_order_relaxed);
  bytes_appended_base_ += wal_->BytesAppended();
  wal_.reset();
}

}  // namespace qcnt::storage
