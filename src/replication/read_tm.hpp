// Read transaction managers (Section 3.1), transcribed from the paper.
//
// A read-TM T for item x performs a logical read: it invokes read accesses
// on DMs for x, keeps the (version-number, value) pair with the highest
// version seen, and once COMMITs have arrived from some read-quorum of DMs
// it may request to commit with that value. State components: awake, data,
// requested, read — with the paper's exact pre/postconditions, including
// the deliberately vacuous ABORT postcondition ("it is not necessary for
// correctness for the read-TM to remember which of its children aborted").
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ioa/automaton.hpp"
#include "replication/spec.hpp"

namespace qcnt::replication {

class ReadTm : public ioa::Automaton {
 public:
  ReadTm(const ReplicatedSpec& spec, ItemId item, TxnId tm);

  TxnId Txn() const { return tm_; }
  bool Awake() const { return awake_; }
  const Versioned& Data() const { return data_; }
  /// Bitmask of replicas in the `read` state component.
  std::uint64_t ReadMask() const { return read_; }
  /// Does `read` contain some read-quorum of config(x)?
  bool HasReadQuorum() const;

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  struct Kid {
    TxnId txn;
    ReplicaId replica;
  };

  const ReplicatedSpec* spec_;
  ItemId item_;
  TxnId tm_;
  std::vector<Kid> kids_;
  std::unordered_map<TxnId, std::size_t> kid_index_;
  /// Read-quorums of config(x) as replica bitmasks.
  std::vector<std::uint64_t> read_quorum_masks_;
  Versioned initial_;

  // State (paper names).
  bool awake_ = false;
  Versioned data_;
  std::vector<std::uint8_t> requested_;
  std::uint64_t read_ = 0;
};

}  // namespace qcnt::replication
