// Write transaction managers (Section 3.1), transcribed from the paper.
//
// A write-TM T for item x with associated value(T) performs a logical
// write: it first invokes read accesses until COMMITs from some read-quorum
// have arrived (version discovery), then invokes write accesses carrying
// (data.version-number + 1, value(T)), and may request to commit (with nil)
// once COMMITs from some write-quorum of DMs have arrived.
//
// Two subtleties from the paper are preserved exactly:
//   * a read COMMIT updates the TM's state only while write-requested = {},
//     so the TM never "sees the data it wrote and incorrectly increases its
//     version-number";
//   * only the *version-number* of a read COMMIT is recorded — the value
//     component of the TM's data is never consulted for a write.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ioa/automaton.hpp"
#include "replication/spec.hpp"

namespace qcnt::replication {

class WriteTm : public ioa::Automaton {
 public:
  WriteTm(const ReplicatedSpec& spec, ItemId item, TxnId tm);

  TxnId Txn() const { return tm_; }
  bool Awake() const { return awake_; }
  /// Only the version component is meaningful (see header comment).
  const Versioned& Data() const { return data_; }
  std::uint64_t ReadMask() const { return read_; }
  std::uint64_t WrittenMask() const { return written_; }
  bool HasReadQuorum() const;
  bool HasWriteQuorum() const;
  /// Has any write access been requested yet?
  bool WriteRequested() const { return write_requested_count_ > 0; }

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  struct Kid {
    TxnId txn;
    ReplicaId replica;
    bool is_write;
    std::uint64_t version;  // for write kids: the version the access writes
  };

  /// The data a write access must carry to be requestable now.
  std::uint64_t NextVersion() const { return data_.version + 1; }

  const ReplicatedSpec* spec_;
  ItemId item_;
  TxnId tm_;
  Plain value_;  // value(T)
  std::vector<Kid> kids_;
  std::unordered_map<TxnId, std::size_t> kid_index_;
  std::vector<std::uint64_t> read_quorum_masks_;
  std::vector<std::uint64_t> write_quorum_masks_;

  // State (paper names: awake, data, read-requested, write-requested,
  // read, written).
  bool awake_ = false;
  Versioned data_;
  std::vector<std::uint8_t> requested_;
  std::size_t write_requested_count_ = 0;
  std::uint64_t read_ = 0;
  std::uint64_t written_ = 0;
};

}  // namespace qcnt::replication
