#include "replication/read_tm.hpp"

#include "common/check.hpp"

namespace qcnt::replication {

namespace {
std::uint64_t QuorumMask(const quorum::Quorum& q) {
  std::uint64_t mask = 0;
  for (ReplicaId r : q) {
    QCNT_CHECK(r < 64);
    mask |= 1ull << r;
  }
  return mask;
}
}  // namespace

ReadTm::ReadTm(const ReplicatedSpec& spec, ItemId item, TxnId tm)
    : spec_(&spec), item_(item), tm_(tm) {
  QCNT_CHECK(spec.Finalized());
  const ItemInfo& info = spec.Item(item);
  const txn::SystemType& type = spec.Type();
  initial_ = Versioned{0, info.initial};
  for (TxnId child : type.Children(tm)) {
    QCNT_CHECK(type.IsAccess(child) &&
               type.KindOf(child) == txn::AccessKind::kRead);
    kid_index_[child] = kids_.size();
    kids_.push_back({child, spec.ReplicaOf(type.ObjectOf(child))});
  }
  for (const quorum::Quorum& q : info.config.ReadQuorums()) {
    read_quorum_masks_.push_back(QuorumMask(q));
  }
  Reset();
}

void ReadTm::Reset() {
  awake_ = false;
  data_ = initial_;
  requested_.assign(kids_.size(), 0);
  read_ = 0;
}

std::string ReadTm::Name() const { return spec_->Type().Label(tm_); }

bool ReadTm::HasReadQuorum() const {
  for (std::uint64_t mask : read_quorum_masks_) {
    if ((read_ & mask) == mask) return true;
  }
  return false;
}

bool ReadTm::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == tm_;
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return kid_index_.count(a.txn) != 0;
  }
  return false;
}

bool ReadTm::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool ReadTm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;  // inputs
    case ioa::ActionKind::kRequestCreate:
      return awake_ && !requested_[kid_index_.at(a.txn)];
    case ioa::ActionKind::kRequestCommit:
      // Preconditions: awake; some read-quorum ⊆ read; v = data.value.
      return awake_ && HasReadQuorum() && a.value == FromPlain(data_.value);
  }
  return false;
}

void ReadTm::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      requested_[kid_index_.at(a.txn)] = 1;
      break;
    case ioa::ActionKind::kCommit: {
      // read(s) = read(s') ∪ {O(T')}; keep the highest-versioned data.
      const Kid& kid = kids_[kid_index_.at(a.txn)];
      read_ |= 1ull << kid.replica;
      if (const auto* d = std::get_if<Versioned>(&a.value)) {
        if (d->version > data_.version) data_ = *d;
      }
      break;
    }
    case ioa::ActionKind::kAbort:
      break;  // (no change) — the paper's postcondition is empty
    case ioa::ActionKind::kRequestCommit:
      awake_ = false;
      break;
  }
}

void ReadTm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (!requested_[i]) out.push_back(ioa::RequestCreate(kids_[i].txn));
  }
  if (HasReadQuorum()) {
    out.push_back(ioa::RequestCommit(tm_, FromPlain(data_.value)));
  }
}

}  // namespace qcnt::replication
