// Schedule-analysis functions of Section 3.1.
//
//   access(x, β)        — the subsequence of CREATE / REQUEST-COMMIT
//                         operations for members of tm(x);
//   logical-state(x, β) — value(T) of the last write-TM that request-
//                         committed in access(x, β), or i_x if none;
//   current-vn(x, β)    — the highest version number carried by the *last*
//                         write access request-committed at each DM of x
//                         (0 when no DM has committed a write access).
//
// These are definitions over schedules, not automata; the invariant
// checkers (invariants.hpp) and the Lemma 8 property tests compare them
// against live automaton state.
#pragma once

#include "ioa/action.hpp"
#include "replication/spec.hpp"

namespace qcnt::replication {

/// access(x, β).
ioa::Schedule AccessSequence(const ReplicatedSpec& spec, ItemId x,
                             const ioa::Schedule& beta);

/// logical-state(x, β).
Plain LogicalState(const ReplicatedSpec& spec, ItemId x,
                   const ioa::Schedule& beta);

/// current-vn(x, β).
std::uint64_t CurrentVersion(const ReplicatedSpec& spec, ItemId x,
                             const ioa::Schedule& beta);

}  // namespace qcnt::replication
