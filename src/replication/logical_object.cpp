#include "replication/logical_object.hpp"

#include "common/check.hpp"

namespace qcnt::replication {

LogicalObject::LogicalObject(const ReplicatedSpec& spec, ItemId item)
    : spec_(&spec), item_(item) {
  QCNT_CHECK(spec.Finalized());
  Reset();
}

void LogicalObject::Reset() {
  active_ = kNoTxn;
  data_ = spec_->Item(item_).initial;
}

std::string LogicalObject::Name() const {
  return "logical-object(" + spec_->Item(item_).name + ")";
}

bool LogicalObject::IsReadTm(TxnId t) const {
  for (TxnId tm : spec_->Item(item_).read_tms) {
    if (tm == t) return true;
  }
  return false;
}

bool LogicalObject::IsOperation(const ioa::Action& a) const {
  if (a.kind != ioa::ActionKind::kCreate &&
      a.kind != ioa::ActionKind::kRequestCommit) {
    return false;
  }
  return spec_->TmItem(a.txn) == item_;
}

bool LogicalObject::IsOutput(const ioa::Action& a) const {
  return a.kind == ioa::ActionKind::kRequestCommit && IsOperation(a);
}

bool LogicalObject::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  if (a.kind == ioa::ActionKind::kCreate) return true;  // input
  if (active_ != a.txn) return false;
  if (IsReadTm(a.txn)) return a.value == FromPlain(data_);
  return IsNil(a.value);
}

void LogicalObject::Apply(const ioa::Action& a) {
  if (a.kind == ioa::ActionKind::kCreate) {
    active_ = a.txn;
    return;
  }
  if (!IsReadTm(a.txn)) {
    data_ = spec_->Item(item_).write_values.at(a.txn);
  }
  active_ = kNoTxn;
}

void LogicalObject::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (active_ == kNoTxn) return;
  if (IsReadTm(active_)) {
    out.push_back(ioa::RequestCommit(active_, FromPlain(data_)));
  } else {
    out.push_back(ioa::RequestCommit(active_, kNil));
  }
}

}  // namespace qcnt::replication
