// Replicated serial system specification and builders (Sections 3.1, 3.2).
//
// A ReplicatedSpec describes one instance of the paper's setup: a set I of
// logical data items, each with its data managers dm(x), a legal
// configuration config(x), and transaction managers tm_r(x) / tm_w(x); plus
// arbitrary user transactions and non-replica objects. Finalize()
// materializes the replica accesses acc(x) under every TM:
//
//   * a read-TM gets `read_attempts` read accesses per DM (multiple
//     attempts model the paper's "invokes any number of accesses", and give
//     a TM spare accesses when the scheduler aborts some);
//   * a write-TM additionally gets `write_attempts` write accesses per DM
//     *per possible version number*. Version numbers are part of an access's
//     name (parameters distinguish transactions), and a run with W write-TMs
//     on x can write versions 1..W only, so the materialized finite tree
//     covers every reachable execution of the paper's infinite tree.
//
// After Finalize(), BuildSystemB() composes the replicated serial system B
// (serial scheduler + DMs + TMs + non-replica objects) and BuildSystemA()
// the corresponding non-replicated serial system A (serial scheduler +
// one logical read-write object per item + the same non-replica objects).
// Both use the *same* transaction names, so the paper's correspondence
// mapping F_BA is the identity and Theorem 10's projection can be replayed
// on A directly. User-transaction automata are added by the caller —
// identically to both systems — via the helpers in theorem10.hpp or by hand.
#pragma once

#include <unordered_map>

#include "ioa/system.hpp"
#include "quorum/configuration.hpp"
#include "txn/system_type.hpp"

namespace qcnt::replication {

/// Everything known about one logical data item x.
struct ItemInfo {
  ItemId id = kNoItem;
  std::string name;
  Plain initial;
  quorum::Configuration config;
  /// dm(x): basic-object ids of the replicas; index is the ReplicaId used
  /// in config's quorums.
  std::vector<ObjectId> dm_objects;
  std::vector<TxnId> read_tms;
  std::vector<TxnId> write_tms;
  /// value(T) for each write-TM.
  std::unordered_map<TxnId, Plain> write_values;
  /// acc(x): every replica access (filled by Finalize()).
  std::vector<TxnId> accesses;

  bool IsTm(TxnId t) const;
};

class ReplicatedSpec {
 public:
  ReplicatedSpec() = default;

  // --- declaration (before Finalize) ---------------------------------------

  /// Declare logical item x with `replicas` DMs and a legal configuration
  /// whose quorums range over replica ids 0..replicas-1.
  ItemId AddItem(std::string name, ReplicaId replicas,
                 quorum::Configuration config, Plain initial);

  /// Fault-injection variant: skips the legality (quorum-intersection)
  /// check. Exists so tests and the intersection-ablation bench can
  /// demonstrate that Lemma 8 and Theorem 10 genuinely *depend* on the
  /// intersection property — never use in real systems.
  ItemId AddItemUnchecked(std::string name, ReplicaId replicas,
                          quorum::Configuration config, Plain initial);

  /// Add a non-access user transaction.
  TxnId AddTransaction(TxnId parent, std::string label = {});

  /// Add a read-TM / write-TM for item under a user transaction.
  TxnId AddReadTm(TxnId parent, ItemId item);
  TxnId AddWriteTm(TxnId parent, ItemId item, Plain value);

  /// Non-replica objects and accesses (the a, b accesses of Figure 1).
  ObjectId AddPlainObject(std::string label, Plain initial);
  TxnId AddPlainRead(TxnId parent, ObjectId object, std::string label = {});
  TxnId AddPlainWrite(TxnId parent, ObjectId object, Plain value,
                      std::string label = {});

  /// Materialize replica accesses. Must be called exactly once, after all
  /// declarations and before building systems.
  void Finalize(std::size_t read_attempts = 1, std::size_t write_attempts = 1);

  /// Coordinated materialization (the paper's extra nesting level): each
  /// TM gets coordinator subtransactions, and the replica accesses hang
  /// under the coordinators — a read coordinator per TM plus, for write
  /// TMs, one write coordinator per reachable version. BuildSystemB then
  /// composes the coordinated automata; system A is unchanged.
  void FinalizeCoordinated(std::size_t read_attempts = 1,
                           std::size_t write_attempts = 1);

  /// Was FinalizeCoordinated used?
  bool Coordinated() const { return coordinated_; }
  /// Is t a coordinator subtransaction?
  bool IsCoordinator(TxnId t) const;
  /// Part of the replication machinery (coordinator or replica access) —
  /// exactly what the Theorem-10 projection deletes.
  bool IsReplicationInternal(TxnId t) const;

  // --- queries (after Finalize) ---------------------------------------------

  const txn::SystemType& Type() const { return type_; }
  const std::vector<ItemInfo>& Items() const { return items_; }
  const ItemInfo& Item(ItemId x) const;
  bool Finalized() const { return finalized_; }

  /// Is t a replica access (member of acc(x) for some x)?
  bool IsReplicaAccess(TxnId t) const;
  /// Is t a TM (member of tm(x) for some x)? Returns the item or kNoItem.
  ItemId TmItem(TxnId t) const;
  /// User transactions: non-access transactions that are not TMs.
  bool IsUserTransaction(TxnId t) const;

  /// Replica id of a DM object within its item.
  ReplicaId ReplicaOf(ObjectId dm_object) const;
  /// Item owning a DM object, or kNoItem.
  ItemId ItemOfDm(ObjectId dm_object) const;

  // --- system construction ---------------------------------------------------

  /// Replicated serial system B: serial scheduler, one DM read-write object
  /// per replica, read-/write-TM automata, and non-replica objects. User
  /// transaction automata must be added by the caller.
  ioa::System BuildSystemB() const;

  /// Non-replicated serial system A (Section 3.2): serial scheduler, one
  /// logical read-write object per item (whose accesses are the TM names),
  /// and the same non-replica objects.
  ioa::System BuildSystemA() const;

 private:
  struct PlainObjectInfo {
    ObjectId object;
    Plain initial;
  };

  txn::SystemType type_;
  std::vector<ItemInfo> items_;
  std::vector<PlainObjectInfo> plain_objects_;
  /// txn -> item for TMs; txn -> item for replica accesses.
  std::unordered_map<TxnId, ItemId> tm_item_;
  std::unordered_map<TxnId, ItemId> access_item_;
  /// dm object -> (item, replica).
  std::unordered_map<ObjectId, std::pair<ItemId, ReplicaId>> dm_of_object_;
  /// Coordinated-mode bookkeeping.
  std::unordered_map<TxnId, ItemId> coordinator_item_;
  std::unordered_map<TxnId, TxnId> tm_read_coord_;
  std::unordered_map<TxnId, std::vector<TxnId>> tm_write_coords_;
  bool finalized_ = false;
  bool coordinated_ = false;
};

}  // namespace qcnt::replication
