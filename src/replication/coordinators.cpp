#include "replication/coordinators.hpp"

#include "common/check.hpp"

namespace qcnt::replication {

namespace {
std::uint64_t QuorumMask(const quorum::Quorum& q) {
  std::uint64_t mask = 0;
  for (ReplicaId r : q) {
    QCNT_CHECK(r < 64);
    mask |= 1ull << r;
  }
  return mask;
}
}  // namespace

// --- ReadCoordinator ---------------------------------------------------------

ReadCoordinator::ReadCoordinator(const ReplicatedSpec& spec, ItemId item,
                                 TxnId self)
    : spec_(&spec), item_(item), self_(self) {
  const ItemInfo& info = spec.Item(item);
  const txn::SystemType& type = spec.Type();
  initial_ = Versioned{0, info.initial};
  for (TxnId child : type.Children(self)) {
    QCNT_CHECK(type.IsAccess(child) &&
               type.KindOf(child) == txn::AccessKind::kRead);
    kid_index_[child] = kids_.size();
    kids_.push_back({child, spec.ReplicaOf(type.ObjectOf(child))});
  }
  for (const quorum::Quorum& q : info.config.ReadQuorums()) {
    read_quorum_masks_.push_back(QuorumMask(q));
  }
  Reset();
}

void ReadCoordinator::Reset() {
  awake_ = false;
  data_ = initial_;
  requested_.assign(kids_.size(), 0);
  read_ = 0;
}

std::string ReadCoordinator::Name() const {
  return spec_->Type().Label(self_);
}

bool ReadCoordinator::HasReadQuorum() const {
  for (std::uint64_t mask : read_quorum_masks_) {
    if ((read_ & mask) == mask) return true;
  }
  return false;
}

bool ReadCoordinator::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == self_;
    default:
      return kid_index_.count(a.txn) != 0;
  }
}

bool ReadCoordinator::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool ReadCoordinator::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;
    case ioa::ActionKind::kRequestCreate:
      return awake_ && !requested_[kid_index_.at(a.txn)];
    case ioa::ActionKind::kRequestCommit:
      // The coordinator returns the assembled versioned pair to its TM.
      return awake_ && HasReadQuorum() && a.value == Value{data_};
  }
  return false;
}

void ReadCoordinator::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      requested_[kid_index_.at(a.txn)] = 1;
      break;
    case ioa::ActionKind::kCommit: {
      const Kid& kid = kids_[kid_index_.at(a.txn)];
      read_ |= 1ull << kid.replica;
      if (const auto* d = std::get_if<Versioned>(&a.value)) {
        if (d->version > data_.version) data_ = *d;
      }
      break;
    }
    case ioa::ActionKind::kAbort:
      break;
    case ioa::ActionKind::kRequestCommit:
      awake_ = false;
      break;
  }
}

void ReadCoordinator::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (!requested_[i]) out.push_back(ioa::RequestCreate(kids_[i].txn));
  }
  if (HasReadQuorum()) {
    out.push_back(ioa::RequestCommit(self_, Value{data_}));
  }
}

// --- WriteCoordinator --------------------------------------------------------

WriteCoordinator::WriteCoordinator(const ReplicatedSpec& spec, ItemId item,
                                   TxnId self)
    : spec_(&spec), item_(item), self_(self) {
  const ItemInfo& info = spec.Item(item);
  const txn::SystemType& type = spec.Type();
  for (TxnId child : type.Children(self)) {
    QCNT_CHECK(type.IsAccess(child) &&
               type.KindOf(child) == txn::AccessKind::kWrite);
    kid_index_[child] = kids_.size();
    kids_.push_back({child, spec.ReplicaOf(type.ObjectOf(child))});
  }
  for (const quorum::Quorum& q : info.config.WriteQuorums()) {
    write_quorum_masks_.push_back(QuorumMask(q));
  }
  Reset();
}

void WriteCoordinator::Reset() {
  awake_ = false;
  requested_.assign(kids_.size(), 0);
  written_ = 0;
}

std::string WriteCoordinator::Name() const {
  return spec_->Type().Label(self_);
}

bool WriteCoordinator::HasWriteQuorum() const {
  for (std::uint64_t mask : write_quorum_masks_) {
    if ((written_ & mask) == mask) return true;
  }
  return false;
}

bool WriteCoordinator::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == self_;
    default:
      return kid_index_.count(a.txn) != 0;
  }
}

bool WriteCoordinator::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool WriteCoordinator::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;
    case ioa::ActionKind::kRequestCreate:
      return awake_ && !requested_[kid_index_.at(a.txn)];
    case ioa::ActionKind::kRequestCommit:
      return awake_ && IsNil(a.value) && HasWriteQuorum();
  }
  return false;
}

void WriteCoordinator::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      requested_[kid_index_.at(a.txn)] = 1;
      break;
    case ioa::ActionKind::kCommit:
      written_ |= 1ull << kids_[kid_index_.at(a.txn)].replica;
      break;
    case ioa::ActionKind::kAbort:
      break;
    case ioa::ActionKind::kRequestCommit:
      awake_ = false;
      break;
  }
}

void WriteCoordinator::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (!requested_[i]) out.push_back(ioa::RequestCreate(kids_[i].txn));
  }
  if (HasWriteQuorum()) out.push_back(ioa::RequestCommit(self_, kNil));
}

// --- CoordReadTm -------------------------------------------------------------

CoordReadTm::CoordReadTm(const ReplicatedSpec& spec, ItemId item, TxnId tm,
                         TxnId coordinator)
    : spec_(&spec), item_(item), tm_(tm), coordinator_(coordinator) {
  QCNT_CHECK(spec.Type().Parent(coordinator) == tm);
  Reset();
}

void CoordReadTm::Reset() {
  awake_ = false;
  requested_ = false;
  have_result_ = false;
  data_ = Versioned{0, spec_->Item(item_).initial};
}

std::string CoordReadTm::Name() const { return spec_->Type().Label(tm_); }

bool CoordReadTm::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == tm_;
    default:
      return a.txn == coordinator_;
  }
}

bool CoordReadTm::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool CoordReadTm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;
    case ioa::ActionKind::kRequestCreate:
      return awake_ && !requested_;
    case ioa::ActionKind::kRequestCommit:
      return awake_ && have_result_ && a.value == FromPlain(data_.value);
  }
  return false;
}

void CoordReadTm::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      requested_ = true;
      break;
    case ioa::ActionKind::kCommit:
      if (const auto* d = std::get_if<Versioned>(&a.value)) {
        data_ = *d;
        have_result_ = true;
      }
      break;
    case ioa::ActionKind::kAbort:
      break;  // the single coordinator aborted: the read cannot complete
    case ioa::ActionKind::kRequestCommit:
      awake_ = false;
      break;
  }
}

void CoordReadTm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  if (!requested_) out.push_back(ioa::RequestCreate(coordinator_));
  if (have_result_) {
    out.push_back(ioa::RequestCommit(tm_, FromPlain(data_.value)));
  }
}

// --- CoordWriteTm ------------------------------------------------------------

CoordWriteTm::CoordWriteTm(const ReplicatedSpec& spec, ItemId item, TxnId tm,
                           TxnId read_coordinator,
                           std::vector<TxnId> write_coordinators)
    : spec_(&spec),
      item_(item),
      tm_(tm),
      read_coordinator_(read_coordinator),
      write_coordinators_(std::move(write_coordinators)) {
  QCNT_CHECK(spec.Type().Parent(read_coordinator) == tm);
  for (TxnId wc : write_coordinators_) {
    QCNT_CHECK(spec.Type().Parent(wc) == tm);
  }
  Reset();
}

void CoordWriteTm::Reset() {
  awake_ = false;
  read_requested_ = false;
  have_version_ = false;
  data_ = Versioned{};
  write_requested_ = false;
  write_done_ = false;
}

std::string CoordWriteTm::Name() const { return spec_->Type().Label(tm_); }

TxnId CoordWriteTm::TargetWriteCoordinator() const {
  const std::uint64_t target = data_.version + 1;
  if (target == 0 || target > write_coordinators_.size()) return kNoTxn;
  return write_coordinators_[target - 1];
}

bool CoordWriteTm::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == tm_;
    default:
      if (a.txn == read_coordinator_) return true;
      for (TxnId wc : write_coordinators_) {
        if (a.txn == wc) return true;
      }
      return false;
  }
}

bool CoordWriteTm::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool CoordWriteTm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;
    case ioa::ActionKind::kRequestCreate:
      if (!awake_) return false;
      if (a.txn == read_coordinator_) return !read_requested_;
      // A write coordinator: only the one installing version+1, once the
      // version is known and no other write has been launched.
      return have_version_ && !write_requested_ &&
             a.txn == TargetWriteCoordinator();
    case ioa::ActionKind::kRequestCommit:
      return awake_ && IsNil(a.value) && write_done_;
  }
  return false;
}

void CoordWriteTm::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      if (a.txn == read_coordinator_) {
        read_requested_ = true;
      } else {
        write_requested_ = true;
      }
      break;
    case ioa::ActionKind::kCommit:
      if (a.txn == read_coordinator_) {
        if (const auto* d = std::get_if<Versioned>(&a.value)) {
          // Only the version matters for a write (as in the flat TM).
          if (!have_version_ || d->version > data_.version) data_ = *d;
          have_version_ = true;
        }
      } else {
        write_done_ = true;
      }
      break;
    case ioa::ActionKind::kAbort:
      break;
    case ioa::ActionKind::kRequestCommit:
      awake_ = false;
      break;
  }
}

void CoordWriteTm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  if (!read_requested_) out.push_back(ioa::RequestCreate(read_coordinator_));
  if (have_version_ && !write_requested_) {
    const TxnId wc = TargetWriteCoordinator();
    if (wc != kNoTxn) out.push_back(ioa::RequestCreate(wc));
  }
  if (write_done_) out.push_back(ioa::RequestCommit(tm_, kNil));
}

}  // namespace qcnt::replication
