#include "replication/theorem10.hpp"

#include "ioa/execution.hpp"
#include "replication/logical.hpp"
#include "replication/logical_object.hpp"

namespace qcnt::replication {

ioa::System BuildB(const ReplicatedSpec& spec,
                   const UserAutomataFactory& users) {
  ioa::System sys = spec.BuildSystemB();
  if (users) users(sys);
  return sys;
}

ioa::System BuildA(const ReplicatedSpec& spec,
                   const UserAutomataFactory& users) {
  ioa::System sys = spec.BuildSystemA();
  if (users) users(sys);
  return sys;
}

ioa::Schedule ProjectOutReplicaAccesses(const ReplicatedSpec& spec,
                                        const ioa::Schedule& beta) {
  // In coordinated mode the coordinators are replication machinery too:
  // the projection deletes them together with the replica accesses.
  return ioa::Project(beta, [&spec](const ioa::Action& a) {
    return !spec.IsReplicationInternal(a.txn);
  });
}

Theorem10Result CheckTheorem10(const ReplicatedSpec& spec,
                               const UserAutomataFactory& users,
                               const ioa::Schedule& beta) {
  Theorem10Result result;
  result.alpha = ProjectOutReplicaAccesses(spec, beta);

  // Condition: α is a schedule of A. (Conditions 1 and 2 of the theorem —
  // agreement at non-DM objects and at user transactions — hold by the very
  // construction of α, since deleting replica-access operations touches no
  // operation of any other primitive; the replay below is the substantive
  // check.)
  ioa::System a = BuildA(spec, users);
  const ioa::ReplayResult replay = ioa::Replay(a, result.alpha);
  if (!replay.ok) {
    result.ok = false;
    result.message = "alpha is not a schedule of A: step " +
                     std::to_string(replay.failed_index) + ": " +
                     replay.message;
    return result;
  }

  // Cross-check the semantic content of the simulation: after α, each
  // logical object of A holds logical-state(x, β) (the proof's key fact).
  for (std::size_t i = 0; i < a.ComponentCount(); ++i) {
    const auto* logical =
        dynamic_cast<const LogicalObject*>(&a.Component(i));
    if (logical == nullptr) continue;
    // Recover the item id by matching the automaton name.
    for (const ItemInfo& info : spec.Items()) {
      if (logical->Name() != "logical-object(" + info.name + ")") continue;
      const Plain expected = LogicalState(spec, info.id, beta);
      if (!(logical->Data() == expected)) {
        result.ok = false;
        result.message = "logical object for " + info.name + " holds " +
                         qcnt::ToString(logical->Data()) +
                         " after alpha, but logical-state(x,beta) = " +
                         qcnt::ToString(expected);
        return result;
      }
    }
  }
  return result;
}

}  // namespace qcnt::replication
