#include "replication/harness.hpp"

#include "quorum/strategies.hpp"
#include "txn/random_transaction.hpp"

namespace qcnt::replication {

Harness::Harness(ReplicatedSpec spec, std::vector<TxnId> user_txns)
    : spec_(std::move(spec)), user_txns_(std::move(user_txns)) {}

UserAutomataFactory Harness::Users() const {
  // The factory must outlive this Harness copy-safely: capture by value.
  const txn::SystemType* type = &spec_.Type();
  std::vector<TxnId> txns = user_txns_;
  return [type, txns](ioa::System& sys) {
    for (TxnId t : txns) {
      sys.Emplace<txn::RandomTransaction>(*type, t);
    }
  };
}

namespace {

quorum::Configuration RandomConfiguration(Rng& rng, ReplicaId n) {
  switch (rng.Below(4)) {
    case 0:
      return quorum::ReadOneWriteAll(n);
    case 1:
      return quorum::ReadAllWriteOne(n);
    case 2:
      return quorum::Majority(n);
    default: {
      // Random weighted voting: votes in 1..3, thresholds at majority.
      std::vector<std::uint32_t> votes;
      std::uint32_t total = 0;
      for (ReplicaId i = 0; i < n; ++i) {
        votes.push_back(1 + static_cast<std::uint32_t>(rng.Below(3)));
        total += votes.back();
      }
      const std::uint32_t w = total / 2 + 1;
      // Any read threshold with r + w > total works; bias toward small r.
      const std::uint32_t r = total + 1 - w;
      return quorum::WeightedVoting(votes, r, w);
    }
  }
}

}  // namespace

Harness MakeRandomHarness(Rng& rng, const HarnessOptions& options) {
  ReplicatedSpec spec;

  const std::size_t item_count = static_cast<std::size_t>(
      rng.Range(static_cast<std::int64_t>(options.min_items),
                static_cast<std::int64_t>(options.max_items)));
  std::vector<ItemId> items;
  for (std::size_t i = 0; i < item_count; ++i) {
    const ReplicaId n = static_cast<ReplicaId>(
        rng.Range(options.min_replicas, options.max_replicas));
    items.push_back(spec.AddItem("x" + std::to_string(i), n,
                                 RandomConfiguration(rng, n),
                                 Plain{std::int64_t{0}}));
  }

  std::vector<ObjectId> plain_objects;
  const std::size_t plain_count = options.max_plain_objects == 0
                                      ? 0
                                      : rng.Below(options.max_plain_objects + 1);
  for (std::size_t i = 0; i < plain_count; ++i) {
    plain_objects.push_back(spec.AddPlainObject("p" + std::to_string(i),
                                                Plain{std::int64_t{0}}));
  }

  std::int64_t next_value = 1;
  auto populate = [&](TxnId parent) {
    const std::size_t tms = 1 + rng.Below(options.max_tms_per_txn);
    for (std::size_t k = 0; k < tms; ++k) {
      const ItemId x = items[rng.Index(items.size())];
      if (rng.Chance(0.5)) {
        spec.AddReadTm(parent, x);
      } else {
        spec.AddWriteTm(parent, x, Plain{next_value++});
      }
    }
    // Occasionally hang a non-replica access off the transaction too.
    if (!plain_objects.empty() && rng.Chance(0.5)) {
      const ObjectId o = plain_objects[rng.Index(plain_objects.size())];
      if (rng.Chance(0.5)) {
        spec.AddPlainRead(parent, o);
      } else {
        spec.AddPlainWrite(parent, o, Plain{next_value++});
      }
    }
  };

  std::vector<TxnId> user_txns{kRootTxn};
  const std::size_t top = 1 + rng.Below(options.max_top_level_txns);
  for (std::size_t i = 0; i < top; ++i) {
    const TxnId u = spec.AddTransaction(kRootTxn, "U" + std::to_string(i));
    user_txns.push_back(u);
    if (rng.Chance(options.nest_probability)) {
      const std::size_t subs = 1 + rng.Below(2);
      for (std::size_t s = 0; s < subs; ++s) {
        const TxnId v =
            spec.AddTransaction(u, "U" + std::to_string(i) + "." +
                                       std::to_string(s));
        user_txns.push_back(v);
        populate(v);
      }
    }
    populate(u);
  }

  spec.Finalize(options.read_attempts, options.write_attempts);
  return Harness(std::move(spec), std::move(user_txns));
}

std::function<double(const ioa::Action&)> AbortWeight(double abort_weight) {
  return [abort_weight](const ioa::Action& a) {
    return a.kind == ioa::ActionKind::kAbort ? abort_weight : 1.0;
  };
}

}  // namespace qcnt::replication
