#include "replication/invariants.hpp"

#include "common/check.hpp"
#include "replication/logical.hpp"
#include "txn/read_write_object.hpp"

namespace qcnt::replication {

namespace {

/// Live (version, value) of each DM of item x, indexed by ReplicaId.
std::vector<Versioned> DmStates(const ReplicatedSpec& spec,
                                const ioa::System& b, ItemId x) {
  const ItemInfo& info = spec.Item(x);
  std::vector<Versioned> states(info.dm_objects.size());
  std::vector<std::uint8_t> found(info.dm_objects.size(), 0);
  for (std::size_t i = 0; i < b.ComponentCount(); ++i) {
    const auto* obj =
        dynamic_cast<const txn::ReadWriteObject*>(&b.Component(i));
    if (obj == nullptr) continue;
    if (spec.ItemOfDm(obj->Object()) != x) continue;
    const ReplicaId r = spec.ReplicaOf(obj->Object());
    states[r] = std::get<Versioned>(obj->Data());
    found[r] = 1;
  }
  for (std::uint8_t f : found) QCNT_CHECK_MSG(f, "missing DM automaton");
  return states;
}

}  // namespace

InvariantReport CheckLemmas(const ReplicatedSpec& spec, const ioa::System& b,
                            const ioa::Schedule& beta) {
  for (const ItemInfo& info : spec.Items()) {
    const ItemId x = info.id;
    const std::vector<Versioned> dms = DmStates(spec, b, x);
    const std::uint64_t current_vn = CurrentVersion(spec, x, beta);

    // Lemma 7: highest version among DM states == current-vn(x, β).
    std::uint64_t highest = 0;
    for (const Versioned& d : dms) highest = std::max(highest, d.version);
    if (highest != current_vn) {
      return {false, "Lemma 7 violated for " + info.name + ": highest DM vn " +
                         std::to_string(highest) + " != current-vn " +
                         std::to_string(current_vn)};
    }

    // Lemma 8 applies between logical operations.
    const ioa::Schedule access = AccessSequence(spec, x, beta);
    if (access.size() % 2 != 0) continue;
    const Plain logical_state = LogicalState(spec, x, beta);

    // 1a: some write-quorum entirely at current-vn.
    bool quorum_current = false;
    for (const quorum::Quorum& q : info.config.WriteQuorums()) {
      bool all = true;
      for (ReplicaId r : q) {
        if (dms[r].version != current_vn) {
          all = false;
          break;
        }
      }
      if (all) {
        quorum_current = true;
        break;
      }
    }
    if (!quorum_current) {
      return {false, "Lemma 8.1a violated for " + info.name +
                         ": no write-quorum holds current-vn " +
                         std::to_string(current_vn)};
    }

    // 1b: every DM at current-vn holds logical-state.
    for (ReplicaId r = 0; r < dms.size(); ++r) {
      if (dms[r].version == current_vn && !(dms[r].value == logical_state)) {
        return {false, "Lemma 8.1b violated for " + info.name + ": DM " +
                           std::to_string(r) + " at current-vn holds " +
                           qcnt::ToString(dms[r].value) +
                           ", expected logical-state " +
                           qcnt::ToString(logical_state)};
      }
    }

    // 2: a read-TM's REQUEST-COMMIT returns logical-state.
    if (!beta.empty()) {
      const ioa::Action& last = beta.back();
      if (last.kind == ioa::ActionKind::kRequestCommit &&
          spec.TmItem(last.txn) == x &&
          info.write_values.count(last.txn) == 0) {
        if (!(last.value == FromPlain(logical_state))) {
          return {false, "Lemma 8.2 violated for " + info.name +
                             ": read-TM returned " +
                             qcnt::ToString(last.value) +
                             ", expected logical-state " +
                             qcnt::ToString(logical_state)};
        }
      }
    }
  }
  return {};
}

}  // namespace qcnt::replication
