#include "replication/write_tm.hpp"

#include "common/check.hpp"

namespace qcnt::replication {

namespace {
std::uint64_t QuorumMask(const quorum::Quorum& q) {
  std::uint64_t mask = 0;
  for (ReplicaId r : q) {
    QCNT_CHECK(r < 64);
    mask |= 1ull << r;
  }
  return mask;
}
}  // namespace

WriteTm::WriteTm(const ReplicatedSpec& spec, ItemId item, TxnId tm)
    : spec_(&spec), item_(item), tm_(tm) {
  QCNT_CHECK(spec.Finalized());
  const ItemInfo& info = spec.Item(item);
  const txn::SystemType& type = spec.Type();
  value_ = info.write_values.at(tm);
  data_ = Versioned{0, std::monostate{}};
  for (TxnId child : type.Children(tm)) {
    QCNT_CHECK(type.IsAccess(child));
    Kid kid;
    kid.txn = child;
    kid.replica = spec.ReplicaOf(type.ObjectOf(child));
    kid.is_write = type.KindOf(child) == txn::AccessKind::kWrite;
    kid.version = 0;
    if (kid.is_write) {
      const auto& data = std::get<Versioned>(type.DataOf(child));
      QCNT_CHECK_MSG(data.value == value_,
                     "write accesses must carry value(T)");
      kid.version = data.version;
    }
    kid_index_[child] = kids_.size();
    kids_.push_back(kid);
  }
  for (const quorum::Quorum& q : info.config.ReadQuorums()) {
    read_quorum_masks_.push_back(QuorumMask(q));
  }
  for (const quorum::Quorum& q : info.config.WriteQuorums()) {
    write_quorum_masks_.push_back(QuorumMask(q));
  }
  Reset();
}

void WriteTm::Reset() {
  awake_ = false;
  data_ = Versioned{0, std::monostate{}};
  requested_.assign(kids_.size(), 0);
  write_requested_count_ = 0;
  read_ = 0;
  written_ = 0;
}

std::string WriteTm::Name() const { return spec_->Type().Label(tm_); }

bool WriteTm::HasReadQuorum() const {
  for (std::uint64_t mask : read_quorum_masks_) {
    if ((read_ & mask) == mask) return true;
  }
  return false;
}

bool WriteTm::HasWriteQuorum() const {
  for (std::uint64_t mask : write_quorum_masks_) {
    if ((written_ & mask) == mask) return true;
  }
  return false;
}

bool WriteTm::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == tm_;
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return kid_index_.count(a.txn) != 0;
  }
  return false;
}

bool WriteTm::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool WriteTm::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;  // inputs
    case ioa::ActionKind::kRequestCreate: {
      const Kid& kid = kids_[kid_index_.at(a.txn)];
      if (!awake_ || requested_[kid_index_.at(a.txn)]) return false;
      if (!kid.is_write) return true;
      // Write access preconditions: a read-quorum has been read and the
      // access carries d = (data.version-number + 1, value(T)).
      return HasReadQuorum() && kid.version == NextVersion();
    }
    case ioa::ActionKind::kRequestCommit:
      // Preconditions: awake; v = nil; some write-quorum ⊆ written.
      return awake_ && IsNil(a.value) && HasWriteQuorum();
  }
  return false;
}

void WriteTm::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate: {
      const std::size_t i = kid_index_.at(a.txn);
      if (!requested_[i]) {
        requested_[i] = 1;
        if (kids_[i].is_write) ++write_requested_count_;
      }
      break;
    }
    case ioa::ActionKind::kCommit: {
      const Kid& kid = kids_[kid_index_.at(a.txn)];
      if (kid.is_write) {
        written_ |= 1ull << kid.replica;
      } else if (write_requested_count_ == 0) {
        // Read COMMITs are ignored once writes have been invoked, so the TM
        // never counts its own writes toward version discovery.
        read_ |= 1ull << kid.replica;
        if (const auto* d = std::get_if<Versioned>(&a.value)) {
          if (d->version > data_.version) data_.version = d->version;
        }
      }
      break;
    }
    case ioa::ActionKind::kAbort:
      break;  // (no change)
    case ioa::ActionKind::kRequestCommit:
      awake_ = false;
      break;
  }
}

void WriteTm::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_) return;
  const bool read_quorum = HasReadQuorum();
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (requested_[i]) continue;
    const Kid& kid = kids_[i];
    if (kid.is_write) {
      if (read_quorum && kid.version == NextVersion()) {
        out.push_back(ioa::RequestCreate(kid.txn));
      }
    } else {
      out.push_back(ioa::RequestCreate(kid.txn));
    }
  }
  if (HasWriteQuorum()) {
    out.push_back(ioa::RequestCommit(tm_, kNil));
  }
}

}  // namespace qcnt::replication
