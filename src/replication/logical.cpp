#include "replication/logical.hpp"

#include "common/check.hpp"

namespace qcnt::replication {

ioa::Schedule AccessSequence(const ReplicatedSpec& spec, ItemId x,
                             const ioa::Schedule& beta) {
  ioa::Schedule out;
  for (const ioa::Action& a : beta) {
    if (a.kind != ioa::ActionKind::kCreate &&
        a.kind != ioa::ActionKind::kRequestCommit) {
      continue;
    }
    if (spec.TmItem(a.txn) == x) out.push_back(a);
  }
  return out;
}

Plain LogicalState(const ReplicatedSpec& spec, ItemId x,
                   const ioa::Schedule& beta) {
  const ItemInfo& info = spec.Item(x);
  Plain state = info.initial;
  for (const ioa::Action& a : beta) {
    if (a.kind != ioa::ActionKind::kRequestCommit) continue;
    if (spec.TmItem(a.txn) != x) continue;
    if (info.write_values.count(a.txn)) {
      state = info.write_values.at(a.txn);
    }
  }
  return state;
}

std::uint64_t CurrentVersion(const ReplicatedSpec& spec, ItemId x,
                             const ioa::Schedule& beta) {
  const ItemInfo& info = spec.Item(x);
  const txn::SystemType& type = spec.Type();
  // last(x, β): for each DM, the last write access with a REQUEST-COMMIT.
  std::vector<std::uint64_t> last_vn(info.dm_objects.size(), 0);
  std::vector<std::uint8_t> seen(info.dm_objects.size(), 0);
  for (const ioa::Action& a : beta) {
    if (a.kind != ioa::ActionKind::kRequestCommit) continue;
    if (!spec.IsReplicaAccess(a.txn)) continue;
    if (type.KindOf(a.txn) != txn::AccessKind::kWrite) continue;
    const ObjectId obj = type.ObjectOf(a.txn);
    if (spec.ItemOfDm(obj) != x) continue;
    const ReplicaId r = spec.ReplicaOf(obj);
    last_vn[r] = std::get<Versioned>(type.DataOf(a.txn)).version;
    seen[r] = 1;
  }
  std::uint64_t current = 0;
  for (std::size_t r = 0; r < last_vn.size(); ++r) {
    if (seen[r]) current = std::max(current, last_vn[r]);
  }
  return current;
}

}  // namespace qcnt::replication
