#include "replication/spec.hpp"

#include "common/check.hpp"
#include "replication/coordinators.hpp"
#include "replication/logical_object.hpp"
#include "replication/read_tm.hpp"
#include "replication/write_tm.hpp"
#include "txn/read_write_object.hpp"
#include "txn/serial_scheduler.hpp"

namespace qcnt::replication {

bool ItemInfo::IsTm(TxnId t) const {
  for (TxnId tm : read_tms) {
    if (tm == t) return true;
  }
  for (TxnId tm : write_tms) {
    if (tm == t) return true;
  }
  return false;
}

ItemId ReplicatedSpec::AddItem(std::string name, ReplicaId replicas,
                               quorum::Configuration config, Plain initial) {
  QCNT_CHECK_MSG(config.IsLegal(), "configuration must be legal");
  return AddItemUnchecked(std::move(name), replicas, std::move(config),
                          std::move(initial));
}

ItemId ReplicatedSpec::AddItemUnchecked(std::string name, ReplicaId replicas,
                                        quorum::Configuration config,
                                        Plain initial) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK(replicas >= 1);
  QCNT_CHECK(!config.ReadQuorums().empty() && !config.WriteQuorums().empty());
  QCNT_CHECK_MSG(config.UniverseSize() <= replicas,
                 "quorums mention replica ids beyond the replica count");
  ItemInfo info;
  info.id = static_cast<ItemId>(items_.size());
  info.name = std::move(name);
  info.initial = std::move(initial);
  info.config = std::move(config);
  for (ReplicaId r = 0; r < replicas; ++r) {
    const ObjectId obj =
        type_.AddObject(info.name + ".dm" + std::to_string(r));
    info.dm_objects.push_back(obj);
    dm_of_object_[obj] = {info.id, r};
  }
  items_.push_back(std::move(info));
  return items_.back().id;
}

TxnId ReplicatedSpec::AddTransaction(TxnId parent, std::string label) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK_MSG(TmItem(parent) == kNoItem,
                 "TMs may not have non-access children");
  return type_.AddTransaction(parent, std::move(label));
}

TxnId ReplicatedSpec::AddReadTm(TxnId parent, ItemId item) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK(item < items_.size());
  QCNT_CHECK_MSG(TmItem(parent) == kNoItem, "TMs may not nest");
  ItemInfo& info = items_[item];
  const TxnId tm = type_.AddTransaction(
      parent, "read-TM[" + info.name + "]#" +
                  std::to_string(info.read_tms.size()));
  info.read_tms.push_back(tm);
  tm_item_[tm] = item;
  return tm;
}

TxnId ReplicatedSpec::AddWriteTm(TxnId parent, ItemId item, Plain value) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK(item < items_.size());
  QCNT_CHECK_MSG(TmItem(parent) == kNoItem, "TMs may not nest");
  ItemInfo& info = items_[item];
  const TxnId tm = type_.AddTransaction(
      parent, "write-TM[" + info.name + "=" + qcnt::ToString(value) + "]#" +
                  std::to_string(info.write_tms.size()));
  info.write_tms.push_back(tm);
  info.write_values[tm] = std::move(value);
  tm_item_[tm] = item;
  return tm;
}

ObjectId ReplicatedSpec::AddPlainObject(std::string label, Plain initial) {
  QCNT_CHECK(!finalized_);
  const ObjectId obj = type_.AddObject(std::move(label));
  plain_objects_.push_back({obj, std::move(initial)});
  return obj;
}

TxnId ReplicatedSpec::AddPlainRead(TxnId parent, ObjectId object,
                                   std::string label) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK_MSG(!dm_of_object_.count(object),
                 "replica accesses are created by Finalize() only");
  QCNT_CHECK_MSG(TmItem(parent) == kNoItem,
                 "TMs access only their item's DMs");
  return type_.AddReadAccess(parent, object, std::move(label));
}

TxnId ReplicatedSpec::AddPlainWrite(TxnId parent, ObjectId object,
                                    Plain value, std::string label) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK_MSG(!dm_of_object_.count(object),
                 "replica accesses are created by Finalize() only");
  QCNT_CHECK_MSG(TmItem(parent) == kNoItem,
                 "TMs access only their item's DMs");
  return type_.AddWriteAccess(parent, object, FromPlain(value),
                              std::move(label));
}

void ReplicatedSpec::Finalize(std::size_t read_attempts,
                              std::size_t write_attempts) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK(read_attempts >= 1 && write_attempts >= 1);
  for (ItemInfo& info : items_) {
    // The highest version number any execution can reach equals the number
    // of write-TMs for the item (each completed logical write increments
    // the current version by exactly one — Lemma 8).
    const std::uint64_t max_vn = info.write_tms.size();

    auto add_read_accesses = [&](TxnId tm) {
      for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
        for (std::size_t k = 0; k < read_attempts; ++k) {
          const TxnId acc = type_.AddReadAccess(
              tm, info.dm_objects[r],
              type_.Label(tm) + ".r" + std::to_string(r) + "." +
                  std::to_string(k));
          info.accesses.push_back(acc);
          access_item_[acc] = info.id;
        }
      }
    };

    for (TxnId tm : info.read_tms) add_read_accesses(tm);
    for (TxnId tm : info.write_tms) {
      add_read_accesses(tm);
      const Plain& value = info.write_values.at(tm);
      for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
        for (std::uint64_t vn = 1; vn <= max_vn; ++vn) {
          for (std::size_t k = 0; k < write_attempts; ++k) {
            const TxnId acc = type_.AddWriteAccess(
                tm, info.dm_objects[r], Value{Versioned{vn, value}},
                type_.Label(tm) + ".w" + std::to_string(r) + ".v" +
                    std::to_string(vn) + "." + std::to_string(k));
            info.accesses.push_back(acc);
            access_item_[acc] = info.id;
          }
        }
      }
    }
  }
  finalized_ = true;
}

void ReplicatedSpec::FinalizeCoordinated(std::size_t read_attempts,
                                         std::size_t write_attempts) {
  QCNT_CHECK(!finalized_);
  QCNT_CHECK(read_attempts >= 1 && write_attempts >= 1);
  for (ItemInfo& info : items_) {
    const std::uint64_t max_vn = info.write_tms.size();

    auto add_read_coordinator = [&](TxnId tm) {
      const TxnId coord =
          type_.AddTransaction(tm, type_.Label(tm) + ".read-coord");
      coordinator_item_[coord] = info.id;
      tm_read_coord_[tm] = coord;
      for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
        for (std::size_t k = 0; k < read_attempts; ++k) {
          const TxnId acc = type_.AddReadAccess(
              coord, info.dm_objects[r],
              type_.Label(coord) + ".r" + std::to_string(r) + "." +
                  std::to_string(k));
          info.accesses.push_back(acc);
          access_item_[acc] = info.id;
        }
      }
    };

    for (TxnId tm : info.read_tms) add_read_coordinator(tm);
    for (TxnId tm : info.write_tms) {
      add_read_coordinator(tm);
      const Plain& value = info.write_values.at(tm);
      std::vector<TxnId>& coords = tm_write_coords_[tm];
      for (std::uint64_t vn = 1; vn <= max_vn; ++vn) {
        const TxnId coord = type_.AddTransaction(
            tm, type_.Label(tm) + ".write-coord.v" + std::to_string(vn));
        coordinator_item_[coord] = info.id;
        coords.push_back(coord);
        for (ReplicaId r = 0; r < info.dm_objects.size(); ++r) {
          for (std::size_t k = 0; k < write_attempts; ++k) {
            const TxnId acc = type_.AddWriteAccess(
                coord, info.dm_objects[r], Value{Versioned{vn, value}},
                type_.Label(coord) + ".w" + std::to_string(r) + "." +
                    std::to_string(k));
            info.accesses.push_back(acc);
            access_item_[acc] = info.id;
          }
        }
      }
    }
  }
  finalized_ = true;
  coordinated_ = true;
}

bool ReplicatedSpec::IsCoordinator(TxnId t) const {
  return coordinator_item_.count(t) != 0;
}

bool ReplicatedSpec::IsReplicationInternal(TxnId t) const {
  return IsReplicaAccess(t) || IsCoordinator(t);
}

const ItemInfo& ReplicatedSpec::Item(ItemId x) const {
  QCNT_CHECK(x < items_.size());
  return items_[x];
}

bool ReplicatedSpec::IsReplicaAccess(TxnId t) const {
  return access_item_.count(t) != 0;
}

ItemId ReplicatedSpec::TmItem(TxnId t) const {
  auto it = tm_item_.find(t);
  return it == tm_item_.end() ? kNoItem : it->second;
}

bool ReplicatedSpec::IsUserTransaction(TxnId t) const {
  return t < type_.TxnCount() && !type_.IsAccess(t) &&
         TmItem(t) == kNoItem && !IsCoordinator(t);
}

ReplicaId ReplicatedSpec::ReplicaOf(ObjectId dm_object) const {
  auto it = dm_of_object_.find(dm_object);
  QCNT_CHECK(it != dm_of_object_.end());
  return it->second.second;
}

ItemId ReplicatedSpec::ItemOfDm(ObjectId dm_object) const {
  auto it = dm_of_object_.find(dm_object);
  return it == dm_of_object_.end() ? kNoItem : it->second.first;
}

ioa::System ReplicatedSpec::BuildSystemB() const {
  QCNT_CHECK(finalized_);
  ioa::System sys("system-B");
  sys.Emplace<txn::SerialScheduler>(type_);
  for (const ItemInfo& info : items_) {
    for (ObjectId dm : info.dm_objects) {
      // A DM for x is a read-write object over N × V_x with initial (0, i_x).
      sys.Emplace<txn::ReadWriteObject>(type_, dm,
                                        Value{Versioned{0, info.initial}});
    }
    if (coordinated_) {
      for (TxnId tm : info.read_tms) {
        const TxnId rc = tm_read_coord_.at(tm);
        sys.Emplace<ReadCoordinator>(*this, info.id, rc);
        sys.Emplace<CoordReadTm>(*this, info.id, tm, rc);
      }
      for (TxnId tm : info.write_tms) {
        const TxnId rc = tm_read_coord_.at(tm);
        sys.Emplace<ReadCoordinator>(*this, info.id, rc);
        const std::vector<TxnId>& wcs = tm_write_coords_.at(tm);
        for (TxnId wc : wcs) sys.Emplace<WriteCoordinator>(*this, info.id, wc);
        sys.Emplace<CoordWriteTm>(*this, info.id, tm, rc, wcs);
      }
      continue;
    }
    for (TxnId tm : info.read_tms) {
      sys.Emplace<ReadTm>(*this, info.id, tm);
    }
    for (TxnId tm : info.write_tms) {
      sys.Emplace<WriteTm>(*this, info.id, tm);
    }
  }
  for (const PlainObjectInfo& po : plain_objects_) {
    sys.Emplace<txn::ReadWriteObject>(type_, po.object, FromPlain(po.initial));
  }
  return sys;
}

ioa::System ReplicatedSpec::BuildSystemA() const {
  QCNT_CHECK(finalized_);
  ioa::System sys("system-A");
  sys.Emplace<txn::SerialScheduler>(type_);
  for (const ItemInfo& info : items_) {
    sys.Emplace<LogicalObject>(*this, info.id);
  }
  for (const PlainObjectInfo& po : plain_objects_) {
    sys.Emplace<txn::ReadWriteObject>(type_, po.object, FromPlain(po.initial));
  }
  return sys;
}

}  // namespace qcnt::replication
