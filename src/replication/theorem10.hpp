// Theorem 10: the replicated serial system B simulates the non-replicated
// serial system A.
//
// The proof's construction is executable: given a schedule β of B, delete
// every operation of every replica access; the result α must be a schedule
// of A, must agree with β at every non-DM object, and must give every user
// transaction exactly the same local schedule. CheckTheorem10 performs the
// construction and validates all three conditions by replaying α against a
// freshly built system A (with the same user-transaction automata as B).
#pragma once

#include <functional>

#include "replication/spec.hpp"

namespace qcnt::replication {

/// Adds the user-transaction automata (for T0 and every user transaction)
/// to a system under construction. The same factory must be used for B and
/// A so that the two systems share primitives outside the replication layer.
using UserAutomataFactory = std::function<void(ioa::System&)>;

/// Compose system B / system A including user automata.
ioa::System BuildB(const ReplicatedSpec& spec,
                   const UserAutomataFactory& users);
ioa::System BuildA(const ReplicatedSpec& spec,
                   const UserAutomataFactory& users);

/// The construction from the proof of Theorem 10: remove all REQUEST-CREATE,
/// CREATE, REQUEST-COMMIT, COMMIT and ABORT operations of replica accesses.
ioa::Schedule ProjectOutReplicaAccesses(const ReplicatedSpec& spec,
                                        const ioa::Schedule& beta);

struct Theorem10Result {
  bool ok = true;
  std::string message;
  /// The constructed candidate schedule of A.
  ioa::Schedule alpha;
};

/// Validate Theorem 10 for one schedule β of B.
Theorem10Result CheckTheorem10(const ReplicatedSpec& spec,
                               const UserAutomataFactory& users,
                               const ioa::Schedule& beta);

}  // namespace qcnt::replication
