// Randomized system generation for property tests and theorem benches.
//
// MakeRandomHarness builds a ReplicatedSpec with a random shape — several
// logical items with random replica counts and configuration strategies,
// a random forest of (possibly nested) user transactions, TMs sprinkled
// through them, and optional non-replica objects — together with the
// user-automata factory needed by BuildB/BuildA. User transactions are
// RandomTransaction automata, exercising the full latitude the model
// grants them; combined with Explorer seeds and a tunable ABORT weight,
// a (seed, options) pair denotes one reproducible adversarial execution.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "replication/theorem10.hpp"

namespace qcnt::replication {

struct HarnessOptions {
  std::size_t min_items = 1, max_items = 3;
  ReplicaId min_replicas = 2, max_replicas = 5;
  std::size_t max_top_level_txns = 4;
  /// Probability that a top-level user transaction gets nested children.
  double nest_probability = 0.4;
  std::size_t max_tms_per_txn = 3;
  std::size_t max_plain_objects = 2;
  std::size_t read_attempts = 2;
  std::size_t write_attempts = 1;
};

class Harness {
 public:
  Harness(ReplicatedSpec spec, std::vector<TxnId> user_txns);

  const ReplicatedSpec& Spec() const { return spec_; }
  const std::vector<TxnId>& UserTxns() const { return user_txns_; }

  /// Factory adding RandomTransaction automata for T0 and every user txn.
  UserAutomataFactory Users() const;

 private:
  ReplicatedSpec spec_;
  /// All user transactions including the root.
  std::vector<TxnId> user_txns_;
};

Harness MakeRandomHarness(Rng& rng, const HarnessOptions& options = {});

/// An Explorer weight giving ABORT actions the given relative weight
/// (1.0 = as likely as any other single enabled action; 0 = never abort).
std::function<double(const ioa::Action&)> AbortWeight(double abort_weight);

}  // namespace qcnt::replication
