// Coordinator modules — the paper's extra nesting level (Section 4).
//
// "To simplify our reasoning, we separate the read, write, and reconfigure
// tasks of the TMs into modules called coordinators. This is done most
// naturally by introducing another level of nesting, providing additional
// evidence of the power of nesting as a modelling tool."
//
// In coordinated mode a TM's children are not accesses but coordinator
// subtransactions, and the accesses hang under the coordinators:
//
//   read-TM ──► read-coordinator ──► read accesses on DMs
//   write-TM ─► read-coordinator             (version discovery)
//            └► write-coordinator(vn) ──► write accesses carrying vn
//
// A read-coordinator REQUEST-COMMITs with the (version, value) pair it
// assembled from a read quorum — the nesting machinery itself carries the
// phase result up to the TM via the COMMIT operation. A write-coordinator
// is parameterized (in its *name*, per the paper's convention) by the
// version it installs and commits with nil once a write quorum has
// acknowledged. The coordinated TMs orchestrate their coordinators and are
// observationally identical to the flat Section-3 TMs, which the
// Theorem-10 machinery verifies against the very same system A.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ioa/automaton.hpp"
#include "replication/spec.hpp"

namespace qcnt::replication {

/// Phase module performing the read phase over the DMs of one item.
/// Commits with the highest-versioned (version, value) pair seen once a
/// read quorum has reported.
class ReadCoordinator : public ioa::Automaton {
 public:
  ReadCoordinator(const ReplicatedSpec& spec, ItemId item, TxnId self);

  TxnId Txn() const { return self_; }
  bool HasReadQuorum() const;

  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  struct Kid {
    TxnId txn;
    ReplicaId replica;
  };

  const ReplicatedSpec* spec_;
  ItemId item_;
  TxnId self_;
  std::vector<Kid> kids_;
  std::unordered_map<TxnId, std::size_t> kid_index_;
  std::vector<std::uint64_t> read_quorum_masks_;
  Versioned initial_;
  // State.
  bool awake_ = false;
  Versioned data_;
  std::vector<std::uint8_t> requested_;
  std::uint64_t read_ = 0;
};

/// Phase module installing one specific version at a write quorum.
class WriteCoordinator : public ioa::Automaton {
 public:
  WriteCoordinator(const ReplicatedSpec& spec, ItemId item, TxnId self);

  TxnId Txn() const { return self_; }
  bool HasWriteQuorum() const;

  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  struct Kid {
    TxnId txn;
    ReplicaId replica;
  };

  const ReplicatedSpec* spec_;
  ItemId item_;
  TxnId self_;
  std::vector<Kid> kids_;
  std::unordered_map<TxnId, std::size_t> kid_index_;
  std::vector<std::uint64_t> write_quorum_masks_;
  // State.
  bool awake_ = false;
  std::vector<std::uint8_t> requested_;
  std::uint64_t written_ = 0;
};

/// Read-TM over a read-coordinator.
class CoordReadTm : public ioa::Automaton {
 public:
  CoordReadTm(const ReplicatedSpec& spec, ItemId item, TxnId tm,
              TxnId coordinator);

  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  const ReplicatedSpec* spec_;
  ItemId item_;
  TxnId tm_;
  TxnId coordinator_;
  // State.
  bool awake_ = false;
  bool requested_ = false;
  bool have_result_ = false;
  Versioned data_;
};

/// Write-TM over a read-coordinator plus per-version write-coordinators.
class CoordWriteTm : public ioa::Automaton {
 public:
  /// write_coordinators[k] installs version k+1.
  CoordWriteTm(const ReplicatedSpec& spec, ItemId item, TxnId tm,
               TxnId read_coordinator, std::vector<TxnId> write_coordinators);

  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  /// The coordinator installing version data_.version + 1, if materialized.
  TxnId TargetWriteCoordinator() const;

  const ReplicatedSpec* spec_;
  ItemId item_;
  TxnId tm_;
  TxnId read_coordinator_;
  std::vector<TxnId> write_coordinators_;
  // State.
  bool awake_ = false;
  bool read_requested_ = false;
  bool have_version_ = false;
  Versioned data_;
  bool write_requested_ = false;
  bool write_done_ = false;
};

}  // namespace qcnt::replication
