// Mechanized Lemma 7 and Lemma 8 (Section 3.1).
//
// Lemma 7: after any schedule β of B, the highest version number among the
// states of the DMs in dm(x) equals current-vn(x, β).
//
// Lemma 8 (for β with access(x, β) of even length, i.e. between logical
// operations):
//   1a. some write-quorum q ∈ config(x).w has every DM in q holding version
//       number current-vn(x, β);
//   1b. every DM of x holding version number current-vn(x, β) holds value
//       logical-state(x, β);
//   2.  if β ends in REQUEST-COMMIT(T, v) with T a read-TM for x, then
//       v = logical-state(x, β).
//
// CheckLemmas evaluates all applicable clauses against the *live* DM
// automaton states of a running system B, so an Explorer observer can
// assert them after every single step of a random execution.
#pragma once

#include "ioa/system.hpp"
#include "replication/spec.hpp"

namespace qcnt::replication {

struct InvariantReport {
  bool ok = true;
  std::string message;
};

/// Check Lemma 7 and every applicable clause of Lemma 8 for all items,
/// given system B in the state reached by β (b must be the composed system
/// that actually executed β).
InvariantReport CheckLemmas(const ReplicatedSpec& spec, const ioa::System& b,
                            const ioa::Schedule& beta);

}  // namespace qcnt::replication
