// The logical read-write object O(x) of system A (Section 3.2).
//
// In the non-replicated system each logical item x is implemented by a
// single read-write object over domain V_x whose *accesses are the TM
// names*: F_BA maps a read-TM to a read access and a write-TM T to a write
// access with data value(T). Because our system A shares transaction names
// with system B, this automaton simply treats the tm(x) ids as its access
// set and implements ordinary read-write object semantics over Plain values.
#pragma once

#include "ioa/automaton.hpp"
#include "replication/spec.hpp"

namespace qcnt::replication {

class LogicalObject : public ioa::Automaton {
 public:
  LogicalObject(const ReplicatedSpec& spec, ItemId item);

  const Plain& Data() const { return data_; }
  TxnId Active() const { return active_; }

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  bool IsReadTm(TxnId t) const;

  const ReplicatedSpec* spec_;
  ItemId item_;
  // State.
  TxnId active_ = kNoTxn;
  Plain data_;
};

}  // namespace qcnt::replication
