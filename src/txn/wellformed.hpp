// Well-formedness (Section 2.2).
//
// The paper defines well-formedness recursively for sequences of operations
// of a single transaction and of a single basic object, and calls a system
// sequence well-formed iff its projection at every primitive is well-formed.
// The checker below consumes a system schedule action by action and reports
// the first violation; because the per-primitive rules only reference a
// bounded amount of history (creation, request, and return flags plus the
// pending access of each object), the whole check is incremental and O(1)
// amortized per action.
#pragma once

#include <string>

#include "ioa/action.hpp"
#include "txn/system_type.hpp"

namespace qcnt::txn {

class WellFormednessChecker {
 public:
  explicit WellFormednessChecker(const SystemType& type);

  /// Feed the next action of a system schedule. Returns the empty string if
  /// the extended sequence remains well-formed, otherwise a description of
  /// the violated clause. A violating action is NOT applied to the checker
  /// state, so feeding can continue (useful for tests probing single rules).
  std::string Feed(const ioa::Action& a);

  /// Feed an entire schedule; true iff every step was well-formed. When
  /// false and message != nullptr, *message names the first violation.
  bool FeedAll(const ioa::Schedule& s, std::string* message = nullptr);

  void Reset();

 private:
  const SystemType* type_;
  // Per-transaction history flags.
  std::vector<std::uint8_t> create_seen_;
  std::vector<std::uint8_t> request_create_seen_;
  std::vector<std::uint8_t> request_commit_seen_;
  std::vector<std::uint8_t> return_seen_;
  // Per-object pending access (created, not yet request-committed).
  std::vector<TxnId> pending_access_;
};

/// One-shot check of a full schedule against a system type.
bool IsWellFormed(const SystemType& type, const ioa::Schedule& s,
                  std::string* message = nullptr);

/// Is T an orphan in s — does s contain ABORT(T') for an ancestor T' of T?
/// (Footnote to Theorem 11.)
bool IsOrphan(const SystemType& type, const ioa::Schedule& s, TxnId t);

}  // namespace qcnt::txn
