#include "txn/wellformed.hpp"

#include "common/check.hpp"

namespace qcnt::txn {

WellFormednessChecker::WellFormednessChecker(const SystemType& type)
    : type_(&type) {
  Reset();
}

void WellFormednessChecker::Reset() {
  create_seen_.assign(type_->TxnCount(), 0);
  request_create_seen_.assign(type_->TxnCount(), 0);
  request_commit_seen_.assign(type_->TxnCount(), 0);
  return_seen_.assign(type_->TxnCount(), 0);
  pending_access_.assign(type_->ObjectCount(), kNoTxn);
}

std::string WellFormednessChecker::Feed(const ioa::Action& a) {
  const SystemType& type = *type_;
  QCNT_CHECK(a.txn < type.TxnCount());
  switch (a.kind) {
    case ioa::ActionKind::kRequestCreate: {
      // Operation of parent(T): parent created, not yet requested commit,
      // and no duplicate request.
      if (a.txn == kRootTxn) return "REQUEST-CREATE of the root";
      const TxnId parent = type.Parent(a.txn);
      if (request_create_seen_[a.txn]) {
        return "duplicate REQUEST-CREATE for " + type.Label(a.txn);
      }
      if (!create_seen_[parent]) {
        return "REQUEST-CREATE before CREATE of parent " + type.Label(parent);
      }
      if (request_commit_seen_[parent]) {
        return "REQUEST-CREATE after parent " + type.Label(parent) +
               " requested commit";
      }
      request_create_seen_[a.txn] = 1;
      return {};
    }
    case ioa::ActionKind::kCreate: {
      if (create_seen_[a.txn]) {
        return "duplicate CREATE for " + type.Label(a.txn);
      }
      if (type.IsAccess(a.txn)) {
        // Basic-object well-formedness: no pending access on the object.
        const ObjectId obj = type.ObjectOf(a.txn);
        if (pending_access_[obj] != kNoTxn) {
          return "CREATE of " + type.Label(a.txn) + " while access " +
                 type.Label(pending_access_[obj]) + " is pending on " +
                 type.ObjectLabel(obj);
        }
        pending_access_[obj] = a.txn;
      }
      create_seen_[a.txn] = 1;
      return {};
    }
    case ioa::ActionKind::kRequestCommit: {
      if (request_commit_seen_[a.txn]) {
        return "duplicate REQUEST-COMMIT for " + type.Label(a.txn);
      }
      if (!create_seen_[a.txn]) {
        return "REQUEST-COMMIT before CREATE of " + type.Label(a.txn);
      }
      if (type.IsAccess(a.txn)) {
        pending_access_[type.ObjectOf(a.txn)] = kNoTxn;
      }
      request_commit_seen_[a.txn] = 1;
      return {};
    }
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort: {
      // Operation of parent(T): child's creation was requested, and this is
      // the first return operation for the child.
      if (a.txn == kRootTxn) return "return operation for the root";
      if (!request_create_seen_[a.txn]) {
        return "return for " + type.Label(a.txn) +
               " whose creation was never requested";
      }
      if (return_seen_[a.txn]) {
        return "second return operation for " + type.Label(a.txn);
      }
      return_seen_[a.txn] = 1;
      return {};
    }
  }
  return "unknown action kind";
}

bool WellFormednessChecker::FeedAll(const ioa::Schedule& s,
                                    std::string* message) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::string err = Feed(s[i]);
    if (!err.empty()) {
      if (message != nullptr) {
        *message = "action " + std::to_string(i) + " (" +
                   type_->Pretty(s[i]) + "): " + err;
      }
      return false;
    }
  }
  return true;
}

bool IsWellFormed(const SystemType& type, const ioa::Schedule& s,
                  std::string* message) {
  WellFormednessChecker checker(type);
  return checker.FeedAll(s, message);
}

bool IsOrphan(const SystemType& type, const ioa::Schedule& s, TxnId t) {
  for (const ioa::Action& a : s) {
    if (a.kind == ioa::ActionKind::kAbort && type.IsAncestor(a.txn, t)) {
      return true;
    }
  }
  return false;
}

}  // namespace qcnt::txn
