#include "txn/serial_scheduler.hpp"

#include "common/check.hpp"

namespace qcnt::txn {

SerialScheduler::SerialScheduler(const SystemType& type) : type_(&type) {
  Reset();
}

void SerialScheduler::Reset() {
  const std::size_t n = type_->TxnCount();
  create_requested_.assign(n, 0);
  created_.assign(n, 0);
  aborted_.assign(n, 0);
  returned_.assign(n, 0);
  committed_.assign(n, 0);
  commit_requested_.clear();
  create_order_.clear();
  // Initially create-requested = {T0}.
  create_requested_[kRootTxn] = 1;
  create_order_.push_back(kRootTxn);
}

std::optional<Value> SerialScheduler::CommitValue(TxnId t) const {
  if (!committed_[t]) return std::nullopt;
  for (const auto& [txn, v] : commit_requested_) {
    if (txn == t) return v;
  }
  return std::nullopt;
}

bool SerialScheduler::IsOperation(const ioa::Action& a) const {
  return a.txn < type_->TxnCount();
}

bool SerialScheduler::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kCreate ||
                            a.kind == ioa::ActionKind::kCommit ||
                            a.kind == ioa::ActionKind::kAbort);
}

bool SerialScheduler::SiblingsReturned(TxnId t) const {
  const TxnId parent = type_->Parent(t);
  if (parent == kNoTxn) return true;  // the root has no siblings
  for (TxnId sibling : type_->Children(parent)) {
    if (sibling != t && created_[sibling] && !returned_[sibling]) {
      return false;
    }
  }
  return true;
}

bool SerialScheduler::ChildrenReturned(TxnId t) const {
  for (TxnId child : type_->Children(t)) {
    if (create_requested_[child] && !returned_[child]) return false;
  }
  return true;
}

bool SerialScheduler::CommitRequestedWith(TxnId t, const Value& v) const {
  for (const auto& [txn, value] : commit_requested_) {
    if (txn == t && value == v) return true;
  }
  return false;
}

bool SerialScheduler::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kRequestCommit:
      return true;  // inputs
    case ioa::ActionKind::kCreate:
      return create_requested_[a.txn] && !created_[a.txn] &&
             !aborted_[a.txn] && SiblingsReturned(a.txn);
    case ioa::ActionKind::kCommit:
      // "Since it has no parent, T0 may neither commit nor abort."
      return a.txn != kRootTxn && CommitRequestedWith(a.txn, a.value) &&
             !returned_[a.txn] && ChildrenReturned(a.txn);
    case ioa::ActionKind::kAbort:
      // "Since it has no parent, T0 may neither commit nor abort."
      return a.txn != kRootTxn && create_requested_[a.txn] &&
             !created_[a.txn] && !aborted_[a.txn] && SiblingsReturned(a.txn);
  }
  return false;
}

void SerialScheduler::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kRequestCreate:
      if (!create_requested_[a.txn]) {
        create_requested_[a.txn] = 1;
        create_order_.push_back(a.txn);
      }
      break;
    case ioa::ActionKind::kRequestCommit:
      commit_requested_.emplace_back(a.txn, a.value);
      break;
    case ioa::ActionKind::kCreate:
      created_[a.txn] = 1;
      break;
    case ioa::ActionKind::kCommit:
      committed_[a.txn] = 1;
      returned_[a.txn] = 1;
      break;
    case ioa::ActionKind::kAbort:
      aborted_[a.txn] = 1;
      returned_[a.txn] = 1;
      break;
  }
}

void SerialScheduler::EnabledOutputs(std::vector<ioa::Action>& out) const {
  for (TxnId t : create_order_) {
    if (created_[t] || aborted_[t]) continue;
    if (!SiblingsReturned(t)) continue;
    out.push_back(ioa::Create(t));
    if (t != kRootTxn) out.push_back(ioa::Abort(t));
  }
  for (const auto& [t, v] : commit_requested_) {
    if (t == kRootTxn || returned_[t]) continue;
    if (!ChildrenReturned(t)) continue;
    out.push_back(ioa::Commit(t, v));
  }
}

}  // namespace qcnt::txn
