// Scripted non-access transactions.
//
// The paper leaves transaction automata "largely unspecified", constraining
// them only to preserve well-formedness. ScriptedTransaction is the
// workhorse implementation used for user transactions and for the root T0:
// it requests a fixed list of children (sequentially or all at once), then
// requests commit with a value computed from the children's outcomes. It
// tolerates child aborts — an aborted child simply contributes no value —
// which is exactly the failure model the generalized algorithm must absorb.
#pragma once

#include <functional>
#include <optional>

#include "ioa/automaton.hpp"
#include "txn/system_type.hpp"

namespace qcnt::txn {

class ScriptedTransaction : public ioa::Automaton {
 public:
  /// Outcome of script child i: its COMMIT value, or nullopt if it aborted.
  using Outcomes = std::vector<std::optional<Value>>;
  /// Computes the REQUEST-COMMIT value from the children's outcomes.
  using Reduce = std::function<Value(const Outcomes&)>;

  struct Options {
    /// Request children one at a time, each after the previous returned
    /// (Argus-style); otherwise request all children immediately.
    bool sequential = true;
    /// Commit-value computation; default commits with nil.
    Reduce reduce;
  };

  /// children must all be children of txn in `type`.
  ScriptedTransaction(const SystemType& type, TxnId txn,
                      std::vector<TxnId> children, Options options);
  ScriptedTransaction(const SystemType& type, TxnId txn,
                      std::vector<TxnId> children);

  TxnId Txn() const { return txn_; }
  bool Awake() const { return awake_; }
  bool CommitRequested() const { return commit_requested_; }
  /// Outcome of script child i (by script position).
  const std::optional<Value>& Outcome(std::size_t i) const;
  /// Number of script children that have returned so far.
  std::size_t ReturnedCount() const { return returned_count_; }

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  bool IsScriptChild(TxnId t) const;
  std::size_t ScriptIndex(TxnId t) const;
  /// The script position that may be requested next, or npos.
  std::optional<std::size_t> NextToRequest() const;
  bool ReadyToCommit() const;
  Value CommitValue() const;

  const SystemType* type_;
  TxnId txn_;
  std::vector<TxnId> script_;
  Options options_;
  // State.
  bool awake_ = false;
  bool commit_requested_ = false;
  std::vector<std::uint8_t> requested_;
  std::vector<std::uint8_t> returned_;
  Outcomes outcomes_;
  std::size_t returned_count_ = 0;
};

}  // namespace qcnt::txn
