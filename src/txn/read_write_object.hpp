// Read-write objects (Section 2.3).
//
// A read-write object is a fully specified basic object whose state is
// (active, data): `active` holds the current access (nil when idle) and
// `data` holds an element of the object's domain. A read access
// request-commits with the current data; a write access request-commits
// with nil and installs data(T). The DMs of Section 3 are read-write
// objects over version/value pairs; system A implements each logical item
// as a single read-write object over its plain domain.
#pragma once

#include "ioa/automaton.hpp"
#include "txn/system_type.hpp"

namespace qcnt::txn {

class ReadWriteObject : public ioa::Automaton {
 public:
  /// The object's accesses, kinds, and write payloads come from `type`;
  /// `initial` is the object's initial data value.
  ReadWriteObject(const SystemType& type, ObjectId object, Value initial);

  ObjectId Object() const { return object_; }
  const Value& Data() const { return data_; }
  TxnId Active() const { return active_; }

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  const SystemType* type_;
  ObjectId object_;
  Value initial_;
  // State.
  TxnId active_ = kNoTxn;
  Value data_;
};

}  // namespace qcnt::txn
