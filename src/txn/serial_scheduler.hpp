// The serial scheduler automaton (Section 2.2), transcribed verbatim.
//
// Inputs:  REQUEST-CREATE(T), REQUEST-COMMIT(T,v)
// Outputs: CREATE(T), COMMIT(T,v), ABORT(T)
//
// State components: create-requested, created, commit-requested (a set of
// (transaction, value) pairs), committed, aborted, returned; initially
// create-requested = {T0} and the rest empty.
//
// The scheduler runs the transaction tree as a depth-first traversal: a
// transaction may be created only if its creation was requested, it was not
// created or aborted before, and all of its created siblings have returned;
// it may commit only after every child whose creation was requested has
// returned. An abort is only possible *before* creation — the semantics of
// ABORT(T) are that T was never created, which is what lets the replication
// algorithm tolerate access aborts without recovery machinery.
#pragma once

#include <optional>

#include "ioa/automaton.hpp"
#include "txn/system_type.hpp"

namespace qcnt::txn {

class SerialScheduler : public ioa::Automaton {
 public:
  explicit SerialScheduler(const SystemType& type);

  // State observers (for tests and invariant checks).
  bool CreateRequested(TxnId t) const { return create_requested_[t] != 0; }
  bool Created(TxnId t) const { return created_[t] != 0; }
  bool Aborted(TxnId t) const { return aborted_[t] != 0; }
  bool Returned(TxnId t) const { return returned_[t] != 0; }
  bool Committed(TxnId t) const { return committed_[t] != 0; }
  /// Value with which T committed; empty unless Committed(t).
  std::optional<Value> CommitValue(TxnId t) const;

  // Automaton interface.
  std::string Name() const override { return "serial-scheduler"; }
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  /// All created siblings of t have returned.
  bool SiblingsReturned(TxnId t) const;
  /// All children of t whose creation was requested have returned.
  bool ChildrenReturned(TxnId t) const;
  bool CommitRequestedWith(TxnId t, const Value& v) const;

  const SystemType* type_;
  std::vector<std::uint8_t> create_requested_;
  std::vector<std::uint8_t> created_;
  std::vector<std::uint8_t> aborted_;
  std::vector<std::uint8_t> returned_;
  std::vector<std::uint8_t> committed_;
  /// (T, v) pairs in commit-requested, in arrival order.
  std::vector<std::pair<TxnId, Value>> commit_requested_;
  /// Transactions in create-requested, in arrival order (enumeration aid).
  std::vector<TxnId> create_order_;
};

}  // namespace qcnt::txn
