#include "txn/system_type.hpp"

#include <sstream>

#include "common/check.hpp"

namespace qcnt::txn {

SystemType::SystemType() {
  // The root transaction T0 models the external environment.
  TxnNode root;
  root.label = "T0";
  nodes_.push_back(std::move(root));
}

TxnId SystemType::AddTransaction(TxnId parent, std::string label) {
  QCNT_CHECK(parent < nodes_.size());
  QCNT_CHECK_MSG(!IsAccess(parent), "accesses are leaves");
  const TxnId id = static_cast<TxnId>(nodes_.size());
  TxnNode node;
  node.parent = parent;
  node.label = label.empty() ? ("T" + std::to_string(id)) : std::move(label);
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

ObjectId SystemType::AddObject(std::string label) {
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  ObjectNode node;
  node.label = label.empty() ? ("X" + std::to_string(id)) : std::move(label);
  objects_.push_back(std::move(node));
  return id;
}

TxnId SystemType::AddAccess(TxnId parent, ObjectId object, AccessKind kind,
                            Value data, std::string label) {
  QCNT_CHECK(parent < nodes_.size());
  QCNT_CHECK(object < objects_.size());
  QCNT_CHECK_MSG(!IsAccess(parent), "accesses are leaves");
  const TxnId id = static_cast<TxnId>(nodes_.size());
  TxnNode node;
  node.parent = parent;
  node.kind = kind;
  node.object = object;
  node.data = std::move(data);
  node.label = label.empty() ? ("T" + std::to_string(id)) : std::move(label);
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  objects_[object].accesses.push_back(id);
  return id;
}

TxnId SystemType::AddReadAccess(TxnId parent, ObjectId object,
                                std::string label) {
  return AddAccess(parent, object, AccessKind::kRead, kNil, std::move(label));
}

TxnId SystemType::AddWriteAccess(TxnId parent, ObjectId object, Value data,
                                 std::string label) {
  return AddAccess(parent, object, AccessKind::kWrite, std::move(data),
                   std::move(label));
}

TxnId SystemType::Parent(TxnId t) const {
  QCNT_CHECK(t < nodes_.size());
  return nodes_[t].parent;
}

const std::vector<TxnId>& SystemType::Children(TxnId t) const {
  QCNT_CHECK(t < nodes_.size());
  return nodes_[t].children;
}

bool SystemType::IsAccess(TxnId t) const {
  QCNT_CHECK(t < nodes_.size());
  return nodes_[t].kind != AccessKind::kNone;
}

AccessKind SystemType::KindOf(TxnId t) const {
  QCNT_CHECK(t < nodes_.size());
  return nodes_[t].kind;
}

const Value& SystemType::DataOf(TxnId t) const {
  QCNT_CHECK(t < nodes_.size());
  return nodes_[t].data;
}

ObjectId SystemType::ObjectOf(TxnId t) const {
  QCNT_CHECK(IsAccess(t));
  return nodes_[t].object;
}

const std::vector<TxnId>& SystemType::AccessesOf(ObjectId o) const {
  QCNT_CHECK(o < objects_.size());
  return objects_[o].accesses;
}

const std::string& SystemType::Label(TxnId t) const {
  QCNT_CHECK(t < nodes_.size());
  return nodes_[t].label;
}

const std::string& SystemType::ObjectLabel(ObjectId o) const {
  QCNT_CHECK(o < objects_.size());
  return objects_[o].label;
}

bool SystemType::IsAncestor(TxnId anc, TxnId t) const {
  QCNT_CHECK(anc < nodes_.size() && t < nodes_.size());
  while (t != kNoTxn) {
    if (t == anc) return true;
    t = nodes_[t].parent;
  }
  return false;
}

std::size_t SystemType::Depth(TxnId t) const {
  std::size_t d = 0;
  while (nodes_[t].parent != kNoTxn) {
    t = nodes_[t].parent;
    ++d;
  }
  return d;
}

TxnId SystemType::Lca(TxnId a, TxnId b) const {
  std::size_t da = Depth(a), db = Depth(b);
  while (da > db) {
    a = nodes_[a].parent;
    --da;
  }
  while (db > da) {
    b = nodes_[b].parent;
    --db;
  }
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  return a;
}

std::string SystemType::ToAscii() const {
  std::ostringstream os;
  // Depth-first, children in creation order.
  struct Frame {
    TxnId t;
    std::size_t depth;
  };
  std::vector<Frame> stack{{kRootTxn, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    for (std::size_t i = 0; i < f.depth; ++i) os << "  ";
    os << nodes_[f.t].label;
    if (IsAccess(f.t)) {
      os << " [" << (nodes_[f.t].kind == AccessKind::kRead ? "read " : "write ")
         << objects_[nodes_[f.t].object].label << ']';
    }
    os << '\n';
    const auto& kids = nodes_[f.t].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return os.str();
}

std::string SystemType::Pretty(const ioa::Action& a) const {
  std::ostringstream os;
  os << ioa::KindName(a.kind) << '(' << Label(a.txn);
  if (a.kind == ioa::ActionKind::kRequestCommit ||
      a.kind == ioa::ActionKind::kCommit) {
    os << ", " << qcnt::ToString(a.value);
  }
  os << ')';
  return os.str();
}

}  // namespace qcnt::txn
