#include "txn/read_write_object.hpp"

#include "common/check.hpp"

namespace qcnt::txn {

ReadWriteObject::ReadWriteObject(const SystemType& type, ObjectId object,
                                 Value initial)
    : type_(&type),
      object_(object),
      initial_(std::move(initial)),
      data_(initial_) {
  QCNT_CHECK(object < type.ObjectCount());
}

std::string ReadWriteObject::Name() const {
  return "read-write-object(" + type_->ObjectLabel(object_) + ")";
}

bool ReadWriteObject::IsOperation(const ioa::Action& a) const {
  if (a.kind != ioa::ActionKind::kCreate &&
      a.kind != ioa::ActionKind::kRequestCommit) {
    return false;
  }
  return a.txn < type_->TxnCount() && type_->IsAccess(a.txn) &&
         type_->ObjectOf(a.txn) == object_;
}

bool ReadWriteObject::IsOutput(const ioa::Action& a) const {
  return a.kind == ioa::ActionKind::kRequestCommit && IsOperation(a);
}

bool ReadWriteObject::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  if (a.kind == ioa::ActionKind::kCreate) return true;  // input
  // REQUEST-COMMIT(T,v): T must be the active access; a read returns the
  // current data, a write returns nil.
  if (active_ != a.txn) return false;
  if (type_->KindOf(a.txn) == AccessKind::kRead) return a.value == data_;
  return IsNil(a.value);
}

void ReadWriteObject::Apply(const ioa::Action& a) {
  if (a.kind == ioa::ActionKind::kCreate) {
    active_ = a.txn;
    return;
  }
  QCNT_DCHECK(a.kind == ioa::ActionKind::kRequestCommit);
  if (type_->KindOf(a.txn) == AccessKind::kWrite) {
    data_ = type_->DataOf(a.txn);
  }
  active_ = kNoTxn;
}

void ReadWriteObject::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (active_ == kNoTxn) return;
  if (type_->KindOf(active_) == AccessKind::kRead) {
    out.push_back(ioa::RequestCommit(active_, data_));
  } else {
    out.push_back(ioa::RequestCommit(active_, kNil));
  }
}

void ReadWriteObject::Reset() {
  active_ = kNoTxn;
  data_ = initial_;
}

}  // namespace qcnt::txn
