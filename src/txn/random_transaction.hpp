// Maximally nondeterministic non-access transactions.
//
// For property tests we want transactions that exercise the *full* latitude
// the paper grants: requesting any subset of children in any order, and
// requesting commit at any time after creation — even with children still
// outstanding ("the model allows a transaction to request to commit without
// discovering the fate of all subtransactions whose creation it has
// requested"). RandomTransaction enables every such output and lets the
// Explorer's RNG choose; it preserves well-formedness and nothing more.
#pragma once

#include "ioa/automaton.hpp"
#include "txn/system_type.hpp"

namespace qcnt::txn {

class RandomTransaction : public ioa::Automaton {
 public:
  /// The set of requestable children defaults to all children of txn in
  /// `type`; pass a subset to restrict (e.g. when TMs own some children).
  RandomTransaction(const SystemType& type, TxnId txn);
  RandomTransaction(const SystemType& type, TxnId txn,
                    std::vector<TxnId> children);

  // Automaton interface.
  std::string Name() const override;
  bool IsOperation(const ioa::Action& a) const override;
  bool IsOutput(const ioa::Action& a) const override;
  bool Enabled(const ioa::Action& a) const override;
  void Apply(const ioa::Action& a) override;
  void EnabledOutputs(std::vector<ioa::Action>& out) const override;
  void Reset() override;

 private:
  std::size_t ChildIndex(TxnId t) const;

  const SystemType* type_;
  TxnId txn_;
  std::vector<TxnId> children_;
  // State.
  bool awake_ = false;
  bool commit_requested_ = false;
  std::vector<std::uint8_t> requested_;
};

}  // namespace qcnt::txn
