// System types: (T, parent, O, V) of Section 2.2.
//
// A SystemType is the predefined naming scheme for every transaction that
// might ever be invoked: a finite tree of transaction names rooted at T0,
// whose leaves (accesses) are partitioned into objects. Access names carry
// their attributes — kind(T) ∈ {read, write} and data(T) — exactly as in
// the paper's read-write objects, where the parameters of an access are
// part of its *name* ("transactions that have different input parameters
// are different transactions").
//
// The paper allows infinite trees; our systems construct the finite
// fragment that a given workload can reach, which is equivalent for the
// finite executions we study.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/value.hpp"
#include "ioa/action.hpp"

namespace qcnt::txn {

enum class AccessKind : std::uint8_t { kNone, kRead, kWrite };

class SystemType {
 public:
  SystemType();

  // --- construction --------------------------------------------------------

  /// Add an internal (non-access) transaction under parent.
  TxnId AddTransaction(TxnId parent, std::string label = {});

  /// Register a new basic object.
  ObjectId AddObject(std::string label = {});

  /// Add a read access to object under parent.
  TxnId AddReadAccess(TxnId parent, ObjectId object, std::string label = {});

  /// Add a write access to object under parent, carrying data(T).
  TxnId AddWriteAccess(TxnId parent, ObjectId object, Value data,
                       std::string label = {});

  // --- queries --------------------------------------------------------------

  std::size_t TxnCount() const { return nodes_.size(); }
  std::size_t ObjectCount() const { return objects_.size(); }

  TxnId Parent(TxnId t) const;
  const std::vector<TxnId>& Children(TxnId t) const;
  bool IsAccess(TxnId t) const;
  AccessKind KindOf(TxnId t) const;
  const Value& DataOf(TxnId t) const;
  ObjectId ObjectOf(TxnId t) const;
  const std::vector<TxnId>& AccessesOf(ObjectId o) const;

  const std::string& Label(TxnId t) const;
  const std::string& ObjectLabel(ObjectId o) const;

  /// Is `anc` an ancestor of `t`? (Every transaction is its own ancestor.)
  bool IsAncestor(TxnId anc, TxnId t) const;

  /// Least common ancestor.
  TxnId Lca(TxnId a, TxnId b) const;

  /// Depth of t (root has depth 0).
  std::size_t Depth(TxnId t) const;

  /// Render the tree as indented ASCII (Figures 1 and 2 of the paper).
  std::string ToAscii() const;

  /// Render an action with labels, e.g. "COMMIT(read-TM[x], (vn=1,5))".
  std::string Pretty(const ioa::Action& a) const;

 private:
  struct TxnNode {
    TxnId parent = kNoTxn;
    std::vector<TxnId> children;
    AccessKind kind = AccessKind::kNone;
    ObjectId object = kNoObject;
    Value data = kNil;
    std::string label;
  };
  struct ObjectNode {
    std::vector<TxnId> accesses;
    std::string label;
  };

  TxnId AddAccess(TxnId parent, ObjectId object, AccessKind kind, Value data,
                  std::string label);

  std::vector<TxnNode> nodes_;
  std::vector<ObjectNode> objects_;
};

}  // namespace qcnt::txn
