#include "txn/random_transaction.hpp"

#include "common/check.hpp"

namespace qcnt::txn {

RandomTransaction::RandomTransaction(const SystemType& type, TxnId txn)
    : RandomTransaction(type, txn, type.Children(txn)) {}

RandomTransaction::RandomTransaction(const SystemType& type, TxnId txn,
                                     std::vector<TxnId> children)
    : type_(&type), txn_(txn), children_(std::move(children)) {
  QCNT_CHECK(txn < type.TxnCount() && !type.IsAccess(txn));
  for (TxnId child : children_) {
    QCNT_CHECK(type.Parent(child) == txn);
  }
  Reset();
}

void RandomTransaction::Reset() {
  awake_ = false;
  commit_requested_ = false;
  requested_.assign(children_.size(), 0);
}

std::string RandomTransaction::Name() const {
  return "random-transaction(" + type_->Label(txn_) + ")";
}

std::size_t RandomTransaction::ChildIndex(TxnId t) const {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i] == t) return i;
  }
  return children_.size();
}

bool RandomTransaction::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == txn_;
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return a.txn < type_->TxnCount() && type_->Parent(a.txn) == txn_ &&
             ChildIndex(a.txn) < children_.size();
  }
  return false;
}

bool RandomTransaction::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

bool RandomTransaction::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;  // inputs
    case ioa::ActionKind::kRequestCreate:
      return awake_ && !commit_requested_ && !requested_[ChildIndex(a.txn)];
    case ioa::ActionKind::kRequestCommit:
      // The root models the environment and never finishes its work.
      return txn_ != kRootTxn && awake_ && !commit_requested_ &&
             IsNil(a.value);
  }
  return false;
}

void RandomTransaction::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      requested_[ChildIndex(a.txn)] = 1;
      break;
    case ioa::ActionKind::kRequestCommit:
      commit_requested_ = true;
      break;
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      break;  // a random transaction ignores its children's fates
  }
}

void RandomTransaction::EnabledOutputs(std::vector<ioa::Action>& out) const {
  if (!awake_ || commit_requested_) return;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!requested_[i]) out.push_back(ioa::RequestCreate(children_[i]));
  }
  if (txn_ != kRootTxn) out.push_back(ioa::RequestCommit(txn_, kNil));
}

}  // namespace qcnt::txn
