#include "txn/scripted_transaction.hpp"

#include "common/check.hpp"

namespace qcnt::txn {

ScriptedTransaction::ScriptedTransaction(const SystemType& type, TxnId txn,
                                         std::vector<TxnId> children,
                                         Options options)
    : type_(&type),
      txn_(txn),
      script_(std::move(children)),
      options_(std::move(options)) {
  QCNT_CHECK(txn < type.TxnCount() && !type.IsAccess(txn));
  for (TxnId child : script_) {
    QCNT_CHECK_MSG(type.Parent(child) == txn,
                   "script entries must be children of the transaction");
  }
  Reset();
}

ScriptedTransaction::ScriptedTransaction(const SystemType& type, TxnId txn,
                                         std::vector<TxnId> children)
    : ScriptedTransaction(type, txn, std::move(children), Options{}) {}

void ScriptedTransaction::Reset() {
  awake_ = false;
  commit_requested_ = false;
  requested_.assign(script_.size(), 0);
  returned_.assign(script_.size(), 0);
  outcomes_.assign(script_.size(), std::nullopt);
  returned_count_ = 0;
}

const std::optional<Value>& ScriptedTransaction::Outcome(
    std::size_t i) const {
  QCNT_CHECK(i < outcomes_.size());
  return outcomes_[i];
}

std::string ScriptedTransaction::Name() const {
  return "transaction(" + type_->Label(txn_) + ")";
}

bool ScriptedTransaction::IsScriptChild(TxnId t) const {
  for (TxnId child : script_) {
    if (child == t) return true;
  }
  return false;
}

std::size_t ScriptedTransaction::ScriptIndex(TxnId t) const {
  for (std::size_t i = 0; i < script_.size(); ++i) {
    if (script_[i] == t) return i;
  }
  QCNT_CHECK_MSG(false, "not a script child");
}

bool ScriptedTransaction::IsOperation(const ioa::Action& a) const {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kRequestCommit:
      return a.txn == txn_;
    case ioa::ActionKind::kRequestCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      // Operations of T for its children. We claim only script children so
      // that several automata may (in other systems) share a parent name.
      return a.txn < type_->TxnCount() && type_->Parent(a.txn) == txn_ &&
             IsScriptChild(a.txn);
  }
  return false;
}

bool ScriptedTransaction::IsOutput(const ioa::Action& a) const {
  return IsOperation(a) && (a.kind == ioa::ActionKind::kRequestCreate ||
                            a.kind == ioa::ActionKind::kRequestCommit);
}

std::optional<std::size_t> ScriptedTransaction::NextToRequest() const {
  for (std::size_t i = 0; i < script_.size(); ++i) {
    if (requested_[i]) {
      if (options_.sequential && !returned_[i]) return std::nullopt;
      continue;
    }
    return i;
  }
  return std::nullopt;
}

bool ScriptedTransaction::ReadyToCommit() const {
  if (!awake_ || commit_requested_) return false;
  for (std::size_t i = 0; i < script_.size(); ++i) {
    if (!requested_[i] || !returned_[i]) return false;
  }
  return true;
}

Value ScriptedTransaction::CommitValue() const {
  return options_.reduce ? options_.reduce(outcomes_) : kNil;
}

bool ScriptedTransaction::Enabled(const ioa::Action& a) const {
  if (!IsOperation(a)) return false;
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
    case ioa::ActionKind::kCommit:
    case ioa::ActionKind::kAbort:
      return true;  // inputs
    case ioa::ActionKind::kRequestCreate: {
      if (!awake_ || commit_requested_) return false;
      const auto next = NextToRequest();
      return next.has_value() && script_[*next] == a.txn;
    }
    case ioa::ActionKind::kRequestCommit:
      return ReadyToCommit() && a.value == CommitValue();
  }
  return false;
}

void ScriptedTransaction::Apply(const ioa::Action& a) {
  switch (a.kind) {
    case ioa::ActionKind::kCreate:
      awake_ = true;
      break;
    case ioa::ActionKind::kRequestCreate:
      requested_[ScriptIndex(a.txn)] = 1;
      break;
    case ioa::ActionKind::kCommit: {
      const std::size_t i = ScriptIndex(a.txn);
      if (!returned_[i]) {
        returned_[i] = 1;
        outcomes_[i] = a.value;
        ++returned_count_;
      }
      break;
    }
    case ioa::ActionKind::kAbort: {
      const std::size_t i = ScriptIndex(a.txn);
      if (!returned_[i]) {
        returned_[i] = 1;
        ++returned_count_;
      }
      break;
    }
    case ioa::ActionKind::kRequestCommit:
      commit_requested_ = true;
      break;
  }
}

void ScriptedTransaction::EnabledOutputs(
    std::vector<ioa::Action>& out) const {
  if (!awake_ || commit_requested_) return;
  if (const auto next = NextToRequest()) {
    out.push_back(ioa::RequestCreate(script_[*next]));
    if (options_.sequential) {
      // In sequential mode nothing else can happen until this child is
      // requested and returns.
      return;
    }
  }
  if (ReadyToCommit()) {
    out.push_back(ioa::RequestCommit(txn_, CommitValue()));
  }
}

}  // namespace qcnt::txn
