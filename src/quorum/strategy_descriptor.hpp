// Serializable description of a quorum strategy.
//
// A QuorumSystem is a bundle of predicates — perfect for quorum checks,
// useless for agreement: two processes cannot compare closures, and a
// replica cannot put one on the wire. The StrategyDescriptor is the
// value-type identity of a strategy: its family plus the numeric
// parameters that pin the concrete system (grid dimensions, tree
// branching, vote vectors). Every factory in strategies.hpp stamps its
// descriptor into the system it builds, so any configuration the runtime
// ever installs can be re-derived — over a different member set after a
// membership change, or inside another process that learned it from a
// config message (net/codec carries descriptors since wire v3).
//
// Validation is fail-fast and typed: ValidateDescriptor/SystemFromDescriptor
// throw StrategyConfigError (never a deep QCNT_CHECK abort) when the
// parameters cannot form a legal system over the requested universe —
// the error a store construction or a membership resize surfaces to its
// caller instead of crashing the process.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace qcnt::quorum {

/// The strategy families the runtime can (re-)derive. kOpaque marks a
/// hand-built system (FromConfiguration, or a bare QuorumSystem literal)
/// whose quorum sets have no parametric description — it cannot cross the
/// wire or resize with the member set.
enum class StrategyKind : std::uint8_t {
  kOpaque = 0,
  kMajority = 1,
  /// Read-one-write-all — the read-dominant R=1/W=N extreme.
  kReadOneWriteAll = 2,
  kReadAllWriteOne = 3,
  kGrid = 4,
  /// Agrawal–El Abbadi tree quorums (every tree node is a replica).
  kTree = 5,
  /// Kumar-style recursive majority over a b-ary tree of leaves.
  kHierarchical = 6,
  kWeighted = 7,
  kPrimaryCopy = 8,
};

/// Largest kind value the wire accepts (codec rejects beyond it).
inline constexpr std::uint8_t kMaxStrategyKind =
    static_cast<std::uint8_t>(StrategyKind::kPrimaryCopy);

const char* ToString(StrategyKind kind);

struct StrategyDescriptor {
  StrategyKind kind = StrategyKind::kOpaque;
  /// kGrid: rows; kTree / kHierarchical: branching. Unused otherwise.
  std::uint32_t a = 0;
  /// kGrid: cols; kTree: levels; kHierarchical: depth. Unused otherwise.
  std::uint32_t b = 0;
  /// kWeighted only: one vote count per structural position [0, n).
  std::vector<std::uint32_t> votes;
  std::uint32_t read_threshold = 0;
  std::uint32_t write_threshold = 0;

  bool operator==(const StrategyDescriptor& o) const {
    return kind == o.kind && a == o.a && b == o.b && votes == o.votes &&
           read_threshold == o.read_threshold &&
           write_threshold == o.write_threshold;
  }
  bool operator!=(const StrategyDescriptor& o) const { return !(*this == o); }
};

/// Typed configuration failure: bad parameters, a spec string that parses
/// to nothing, or a strategy that cannot cover the requested member count
/// (a full 2×2 grid cannot grow to 5). Thrown instead of asserting deep
/// inside the factories.
class StrategyConfigError : public std::runtime_error {
 public:
  explicit StrategyConfigError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Canonical spec string, re-parseable by ParseStrategy:
///   "majority" · "rowa" · "rawo" · "primary" · "grid:2x2" · "tree:3,2"
///   · "hier:3,2" · "weighted:3,1,1,1,1:3:5". kOpaque renders "opaque".
std::string ToString(const StrategyDescriptor& d);

/// Parse a spec string (the QCNT_STRATEGY / StoreOptions::strategy
/// grammar; see ToString). Accepted aliases: "read-one-write-all" and
/// "read-dominant" for rowa, "read-all-write-one" for rawo. Throws
/// StrategyConfigError on anything else.
StrategyDescriptor ParseStrategy(const std::string& spec);

/// The member count the descriptor's shape pins, or 0 when the strategy
/// resizes to any n ≥ 1 (majority, rowa, rawo, primary).
ReplicaId RequiredUniverse(const StrategyDescriptor& d);

/// Check that `d` can form a legal system over exactly `n` structural
/// positions; throws StrategyConfigError naming the violated constraint.
void ValidateDescriptor(const StrategyDescriptor& d, ReplicaId n);

}  // namespace qcnt::quorum
