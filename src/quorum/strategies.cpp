#include "quorum/strategies.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/check.hpp"

namespace qcnt::quorum {

namespace {

std::uint64_t FullMask(ReplicaId n) {
  QCNT_CHECK(n >= 1 && n <= 64);
  return n == 64 ? ~0ull : ((1ull << n) - 1);
}

Quorum MaskToQuorum(std::uint64_t mask) {
  Quorum q;
  while (mask) {
    const int bit = std::countr_zero(mask);
    q.push_back(static_cast<ReplicaId>(bit));
    mask &= mask - 1;
  }
  return q;
}

/// All subsets of {0..n-1} of size exactly k.
std::vector<Quorum> KSubsets(ReplicaId n, ReplicaId k) {
  QCNT_CHECK(k >= 1 && k <= n);
  std::vector<Quorum> result;
  Quorum current;
  current.reserve(k);
  // Iterative combination enumeration.
  std::vector<ReplicaId> idx(k);
  std::iota(idx.begin(), idx.end(), 0);
  for (;;) {
    result.emplace_back(idx.begin(), idx.end());
    // Advance to the next combination.
    int i = static_cast<int>(k) - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] ==
                         n - k + static_cast<ReplicaId>(i)) {
      --i;
    }
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (std::size_t j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
  return result;
}

ReplicaId MajorityThreshold(ReplicaId n) { return n / 2 + 1; }

}  // namespace

// --- Explicit configurations ----------------------------------------------

Configuration ReadOneWriteAll(ReplicaId n) {
  QCNT_CHECK(n >= 1);
  std::vector<Quorum> reads;
  for (ReplicaId i = 0; i < n; ++i) reads.push_back({i});
  Quorum all(n);
  std::iota(all.begin(), all.end(), 0);
  return Configuration(std::move(reads), {all});
}

Configuration ReadAllWriteOne(ReplicaId n) {
  QCNT_CHECK(n >= 1);
  std::vector<Quorum> writes;
  for (ReplicaId i = 0; i < n; ++i) writes.push_back({i});
  Quorum all(n);
  std::iota(all.begin(), all.end(), 0);
  return Configuration({all}, std::move(writes));
}

Configuration Majority(ReplicaId n) {
  QCNT_CHECK(n >= 1 && n <= 16);
  auto quorums = KSubsets(n, MajorityThreshold(n));
  return Configuration(quorums, quorums);
}

Configuration WeightedVoting(const std::vector<std::uint32_t>& votes,
                             std::uint32_t read_threshold,
                             std::uint32_t write_threshold) {
  QCNT_CHECK(!votes.empty() && votes.size() <= 16);
  const std::uint64_t total =
      std::accumulate(votes.begin(), votes.end(), std::uint64_t{0});
  QCNT_CHECK_MSG(read_threshold + std::uint64_t{write_threshold} > total,
                 "Gifford constraint: read + write quorum must exceed total");
  QCNT_CHECK(write_threshold * 2 > total);  // write-write intersection
  const ReplicaId n = static_cast<ReplicaId>(votes.size());
  std::vector<Quorum> reads, writes;
  for (std::uint64_t mask = 1; mask < (1ull << n); ++mask) {
    std::uint64_t sum = 0;
    for (ReplicaId i = 0; i < n; ++i) {
      if (mask & (1ull << i)) sum += votes[i];
    }
    if (sum >= read_threshold) reads.push_back(MaskToQuorum(mask));
    if (sum >= write_threshold) writes.push_back(MaskToQuorum(mask));
  }
  return Configuration(std::move(reads), std::move(writes)).Minimized();
}

Configuration Grid(ReplicaId rows, ReplicaId cols) {
  QCNT_CHECK(rows >= 1 && cols >= 1 && rows <= 5 && cols <= 5);
  const auto id = [cols](ReplicaId r, ReplicaId c) { return r * cols + c; };

  // Column covers: one replica from each column.
  std::vector<Quorum> covers;
  Quorum current(cols);
  const std::uint64_t combos = [&] {
    std::uint64_t p = 1;
    for (ReplicaId c = 0; c < cols; ++c) p *= rows;
    return p;
  }();
  for (std::uint64_t code = 0; code < combos; ++code) {
    std::uint64_t rest = code;
    for (ReplicaId c = 0; c < cols; ++c) {
      const ReplicaId r = static_cast<ReplicaId>(rest % rows);
      rest /= rows;
      current[c] = id(r, c);
    }
    covers.push_back(current);
  }

  // Write quorums: a full column plus a cover of the remaining columns.
  std::vector<Quorum> writes;
  for (ReplicaId c0 = 0; c0 < cols; ++c0) {
    for (const Quorum& cover : covers) {
      Quorum w = cover;
      for (ReplicaId r = 0; r < rows; ++r) w.push_back(id(r, c0));
      Normalize(w);
      writes.push_back(std::move(w));
    }
  }
  return Configuration(std::move(covers), std::move(writes)).Minimized();
}

Configuration PrimaryCopy(ReplicaId n) {
  QCNT_CHECK(n >= 1);
  return Configuration({{0}}, {{0}});
}

// --- Predicate systems -----------------------------------------------------

namespace {

/// Pick the lowest-numbered k up replicas, if at least k are up.
std::optional<Quorum> PickLowest(std::uint64_t up, ReplicaId k) {
  if (std::popcount(up) < static_cast<int>(k)) return std::nullopt;
  Quorum q;
  q.reserve(k);
  while (q.size() < k) {
    const int bit = std::countr_zero(up);
    q.push_back(static_cast<ReplicaId>(bit));
    up &= up - 1;
  }
  return q;
}

}  // namespace

QuorumSystem ReadOneWriteAllSystem(ReplicaId n) {
  const std::uint64_t full = FullMask(n);
  QuorumSystem s;
  s.name = "read-one-write-all";
  s.n = n;
  s.descriptor.kind = StrategyKind::kReadOneWriteAll;
  s.has_read = [](std::uint64_t up) { return up != 0; };
  s.has_write = [full](std::uint64_t up) { return (up & full) == full; };
  s.pick_read = [](std::uint64_t up) { return PickLowest(up, 1); };
  s.pick_write = [full, n](std::uint64_t up) -> std::optional<Quorum> {
    if ((up & full) != full) return std::nullopt;
    return PickLowest(full, n);
  };
  return s;
}

QuorumSystem ReadAllWriteOneSystem(ReplicaId n) {
  QuorumSystem s = ReadOneWriteAllSystem(n);
  s.name = "read-all-write-one";
  s.descriptor.kind = StrategyKind::kReadAllWriteOne;
  std::swap(s.has_read, s.has_write);
  std::swap(s.pick_read, s.pick_write);
  return s;
}

QuorumSystem MajoritySystem(ReplicaId n) {
  FullMask(n);  // validate n
  const ReplicaId k = MajorityThreshold(n);
  QuorumSystem s;
  s.name = "majority";
  s.n = n;
  s.descriptor.kind = StrategyKind::kMajority;
  s.has_read = [k](std::uint64_t up) {
    return std::popcount(up) >= static_cast<int>(k);
  };
  s.has_write = s.has_read;
  s.pick_read = [k](std::uint64_t up) { return PickLowest(up, k); };
  s.pick_write = s.pick_read;
  return s;
}

QuorumSystem MajorityOverSystem(const std::vector<ReplicaId>& members) {
  QCNT_CHECK_MSG(!members.empty(), "majority-over: empty member set");
  std::uint64_t member_mask = 0;
  ReplicaId max_id = 0;
  for (ReplicaId m : members) {
    QCNT_CHECK_MSG(m < 64, "majority-over: member id beyond bitmask domain");
    QCNT_CHECK_MSG((member_mask & (1ull << m)) == 0,
                   "majority-over: duplicate member");
    member_mask |= 1ull << m;
    max_id = std::max(max_id, m);
  }
  const ReplicaId k =
      MajorityThreshold(static_cast<ReplicaId>(members.size()));
  QuorumSystem s;
  s.name = "majority-over(" + std::to_string(members.size()) + ")";
  s.descriptor.kind = StrategyKind::kMajority;
  // n is the id-space bound, not the member count: member ids need not be
  // contiguous once replicas join after clients were numbered (membership
  // change), so predicates mask `up` down to the member set first.
  s.n = static_cast<ReplicaId>(max_id + 1);
  s.has_read = [member_mask, k](std::uint64_t up) {
    return std::popcount(up & member_mask) >= static_cast<int>(k);
  };
  s.has_write = s.has_read;
  s.pick_read = [member_mask, k](std::uint64_t up) {
    return PickLowest(up & member_mask, k);
  };
  s.pick_write = s.pick_read;
  return s;
}

QuorumSystem WeightedVotingSystem(std::vector<std::uint32_t> votes,
                                  std::uint32_t read_threshold,
                                  std::uint32_t write_threshold) {
  const ReplicaId n = static_cast<ReplicaId>(votes.size());
  FullMask(n);  // validate n
  const std::uint64_t total =
      std::accumulate(votes.begin(), votes.end(), std::uint64_t{0});
  QCNT_CHECK(read_threshold + std::uint64_t{write_threshold} > total);
  QCNT_CHECK(write_threshold * 2 > total);

  auto up_votes = [votes](std::uint64_t up) {
    std::uint64_t sum = 0;
    for (ReplicaId i = 0; i < votes.size(); ++i) {
      if (up & (1ull << i)) sum += votes[i];
    }
    return sum;
  };
  // Greedy: take up replicas in decreasing vote order until the threshold.
  auto pick = [votes, up_votes](std::uint64_t up,
                                std::uint64_t threshold)
      -> std::optional<Quorum> {
    if (up_votes(up) < threshold) return std::nullopt;
    std::vector<ReplicaId> order(votes.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&votes](ReplicaId a, ReplicaId b) {
                       return votes[a] > votes[b];
                     });
    Quorum q;
    std::uint64_t sum = 0;
    for (ReplicaId i : order) {
      if (!(up & (1ull << i))) continue;
      q.push_back(i);
      sum += votes[i];
      if (sum >= threshold) break;
    }
    Normalize(q);
    return q;
  };

  QuorumSystem s;
  s.name = "weighted-voting";
  s.n = n;
  s.descriptor.kind = StrategyKind::kWeighted;
  s.descriptor.votes = votes;
  s.descriptor.read_threshold = read_threshold;
  s.descriptor.write_threshold = write_threshold;
  s.has_read = [up_votes, read_threshold](std::uint64_t up) {
    return up_votes(up) >= read_threshold;
  };
  s.has_write = [up_votes, write_threshold](std::uint64_t up) {
    return up_votes(up) >= write_threshold;
  };
  s.pick_read = [pick, read_threshold](std::uint64_t up) {
    return pick(up, read_threshold);
  };
  s.pick_write = [pick, write_threshold](std::uint64_t up) {
    return pick(up, write_threshold);
  };
  return s;
}

QuorumSystem GridSystem(ReplicaId rows, ReplicaId cols) {
  const ReplicaId n = rows * cols;
  FullMask(n);  // validate n
  auto col_mask = [rows, cols](ReplicaId c) {
    std::uint64_t m = 0;
    for (ReplicaId r = 0; r < rows; ++r) m |= 1ull << (r * cols + c);
    return m;
  };

  QuorumSystem s;
  s.name = "grid";
  s.n = n;
  s.descriptor.kind = StrategyKind::kGrid;
  s.descriptor.a = rows;
  s.descriptor.b = cols;
  s.has_read = [cols, col_mask](std::uint64_t up) {
    for (ReplicaId c = 0; c < cols; ++c) {
      if ((up & col_mask(c)) == 0) return false;
    }
    return true;
  };
  s.has_write = [cols, col_mask, has_read = s.has_read](std::uint64_t up) {
    if (!has_read(up)) return false;
    for (ReplicaId c = 0; c < cols; ++c) {
      const std::uint64_t m = col_mask(c);
      if ((up & m) == m) return true;
    }
    return false;
  };
  s.pick_read = [cols, col_mask](std::uint64_t up) -> std::optional<Quorum> {
    Quorum q;
    for (ReplicaId c = 0; c < cols; ++c) {
      const std::uint64_t alive = up & col_mask(c);
      if (alive == 0) return std::nullopt;
      q.push_back(static_cast<ReplicaId>(std::countr_zero(alive)));
    }
    Normalize(q);
    return q;
  };
  s.pick_write = [cols, col_mask,
                  pick_read = s.pick_read](std::uint64_t up)
      -> std::optional<Quorum> {
    auto cover = pick_read(up);
    if (!cover) return std::nullopt;
    for (ReplicaId c = 0; c < cols; ++c) {
      const std::uint64_t m = col_mask(c);
      if ((up & m) == m) {
        Quorum q = *cover;
        std::uint64_t col = m;
        while (col) {
          q.push_back(static_cast<ReplicaId>(std::countr_zero(col)));
          col &= col - 1;
        }
        Normalize(q);
        return q;
      }
    }
    return std::nullopt;
  };
  return s;
}

namespace {

/// Recursive majority over the subtree of size b^d rooted at offset.
bool HierHas(std::uint64_t up, ReplicaId branching, ReplicaId depth,
             ReplicaId offset) {
  if (depth == 0) return (up & (1ull << offset)) != 0;
  ReplicaId sub = 1;
  for (ReplicaId i = 1; i < depth; ++i) sub *= branching;
  ReplicaId ok = 0;
  for (ReplicaId c = 0; c < branching; ++c) {
    if (HierHas(up, branching, depth - 1, offset + c * sub)) ++ok;
  }
  return ok >= MajorityThreshold(branching);
}

bool HierPick(std::uint64_t up, ReplicaId branching, ReplicaId depth,
              ReplicaId offset, Quorum& out) {
  if (depth == 0) {
    if (!(up & (1ull << offset))) return false;
    out.push_back(offset);
    return true;
  }
  ReplicaId sub = 1;
  for (ReplicaId i = 1; i < depth; ++i) sub *= branching;
  const ReplicaId need = MajorityThreshold(branching);
  ReplicaId got = 0;
  for (ReplicaId c = 0; c < branching && got < need; ++c) {
    const std::size_t mark = out.size();
    if (HierPick(up, branching, depth - 1, offset + c * sub, out)) {
      ++got;
    } else {
      out.resize(mark);
    }
  }
  return got >= need;
}

}  // namespace

QuorumSystem HierarchicalMajoritySystem(ReplicaId branching,
                                        ReplicaId depth) {
  QCNT_CHECK(branching >= 3 && branching % 2 == 1 && depth >= 1);
  ReplicaId n = 1;
  for (ReplicaId i = 0; i < depth; ++i) n *= branching;
  FullMask(n);  // validate n
  QuorumSystem s;
  s.name = "hierarchical-majority";
  s.n = n;
  s.descriptor.kind = StrategyKind::kHierarchical;
  s.descriptor.a = branching;
  s.descriptor.b = depth;
  s.has_read = [branching, depth](std::uint64_t up) {
    return HierHas(up, branching, depth, 0);
  };
  s.has_write = s.has_read;
  s.pick_read = [branching, depth](std::uint64_t up)
      -> std::optional<Quorum> {
    Quorum q;
    if (!HierPick(up, branching, depth, 0, q)) return std::nullopt;
    Normalize(q);
    return q;
  };
  s.pick_write = s.pick_read;
  return s;
}

namespace {

struct TreeShape {
  ReplicaId branching;
  ReplicaId levels;
  ReplicaId n;

  bool IsLeaf(ReplicaId v) const {
    // Nodes on the last level have no children.
    ReplicaId first_leaf = 0, count = 1;
    for (ReplicaId l = 1; l < levels; ++l) {
      first_leaf += count;
      count *= branching;
    }
    return v >= first_leaf;
  }
  ReplicaId Child(ReplicaId v, ReplicaId i) const {
    return v * branching + 1 + i;
  }
};

/// Read quorum of the subtree at v: {v}, or read quorums of a majority of
/// children. Returns true and appends to out when `up` admits one.
bool TreeReadPick(const TreeShape& t, std::uint64_t up, ReplicaId v,
                  Quorum* out) {
  if (up & (1ull << v)) {
    if (out != nullptr) out->push_back(v);
    return true;
  }
  if (t.IsLeaf(v)) return false;
  const ReplicaId need = t.branching / 2 + 1;
  ReplicaId got = 0;
  const std::size_t mark = out != nullptr ? out->size() : 0;
  for (ReplicaId i = 0; i < t.branching && got < need; ++i) {
    if (TreeReadPick(t, up, t.Child(v, i), out)) ++got;
  }
  if (got >= need) return true;
  if (out != nullptr) out->resize(mark);
  return false;
}

/// Write quorum of the subtree at v: v itself plus write quorums of a
/// majority of children, recursively to the leaves.
bool TreeWritePick(const TreeShape& t, std::uint64_t up, ReplicaId v,
                   Quorum* out) {
  if (!(up & (1ull << v))) return false;
  const std::size_t mark = out != nullptr ? out->size() : 0;
  if (out != nullptr) out->push_back(v);
  if (t.IsLeaf(v)) return true;
  const ReplicaId need = t.branching / 2 + 1;
  ReplicaId got = 0;
  for (ReplicaId i = 0; i < t.branching && got < need; ++i) {
    if (TreeWritePick(t, up, t.Child(v, i), out)) ++got;
  }
  if (got >= need) return true;
  if (out != nullptr) out->resize(mark);
  return false;
}

}  // namespace

QuorumSystem TreeQuorumSystem(ReplicaId branching, ReplicaId levels) {
  QCNT_CHECK(branching >= 3 && branching % 2 == 1 && levels >= 1);
  ReplicaId n = 0, width = 1;
  for (ReplicaId l = 0; l < levels; ++l) {
    n += width;
    width *= branching;
  }
  FullMask(n);  // validate n
  const TreeShape shape{branching, levels, n};

  QuorumSystem s;
  s.name = "tree-quorum";
  s.n = n;
  s.descriptor.kind = StrategyKind::kTree;
  s.descriptor.a = branching;
  s.descriptor.b = levels;
  s.has_read = [shape](std::uint64_t up) {
    return TreeReadPick(shape, up, 0, nullptr);
  };
  s.has_write = [shape](std::uint64_t up) {
    return TreeWritePick(shape, up, 0, nullptr);
  };
  s.pick_read = [shape](std::uint64_t up) -> std::optional<Quorum> {
    Quorum q;
    if (!TreeReadPick(shape, up, 0, &q)) return std::nullopt;
    Normalize(q);
    return q;
  };
  s.pick_write = [shape](std::uint64_t up) -> std::optional<Quorum> {
    Quorum q;
    if (!TreeWritePick(shape, up, 0, &q)) return std::nullopt;
    Normalize(q);
    return q;
  };
  return s;
}

QuorumSystem PrimaryCopySystem(ReplicaId n) {
  FullMask(n);  // validate n
  QuorumSystem s;
  s.name = "primary-copy";
  s.n = n;
  s.descriptor.kind = StrategyKind::kPrimaryCopy;
  s.has_read = [](std::uint64_t up) { return (up & 1ull) != 0; };
  s.has_write = s.has_read;
  s.pick_read = [](std::uint64_t up) -> std::optional<Quorum> {
    if (!(up & 1ull)) return std::nullopt;
    return Quorum{0};
  };
  s.pick_write = s.pick_read;
  return s;
}

QuorumSystem FromConfiguration(std::string name, const Configuration& c) {
  auto contains = [](const std::vector<Quorum>& quorums, std::uint64_t up) {
    for (const Quorum& q : quorums) {
      bool all = true;
      for (ReplicaId r : q) {
        if (!(up & (1ull << r))) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  };
  auto pick = [](const std::vector<Quorum>& quorums,
                 std::uint64_t up) -> std::optional<Quorum> {
    const Quorum* best = nullptr;
    for (const Quorum& q : quorums) {
      bool all = true;
      for (ReplicaId r : q) {
        if (!(up & (1ull << r))) {
          all = false;
          break;
        }
      }
      if (all && (best == nullptr || q.size() < best->size())) best = &q;
    }
    if (best == nullptr) return std::nullopt;
    return *best;
  };

  QuorumSystem s;
  s.name = std::move(name);
  s.n = c.UniverseSize();
  s.has_read = [reads = c.ReadQuorums(), contains](std::uint64_t up) {
    return contains(reads, up);
  };
  s.has_write = [writes = c.WriteQuorums(), contains](std::uint64_t up) {
    return contains(writes, up);
  };
  s.pick_read = [reads = c.ReadQuorums(), pick](std::uint64_t up) {
    return pick(reads, up);
  };
  s.pick_write = [writes = c.WriteQuorums(), pick](std::uint64_t up) {
    return pick(writes, up);
  };
  return s;
}

QuorumSystem SystemFromDescriptor(const StrategyDescriptor& d, ReplicaId n) {
  // Throws StrategyConfigError on anything the factories below would
  // QCNT_CHECK-abort on, so construction failures surface as typed errors.
  ValidateDescriptor(d, n);
  QuorumSystem s;
  switch (d.kind) {
    case StrategyKind::kMajority:
      s = MajoritySystem(n);
      break;
    case StrategyKind::kReadOneWriteAll:
      s = ReadOneWriteAllSystem(n);
      break;
    case StrategyKind::kReadAllWriteOne:
      s = ReadAllWriteOneSystem(n);
      break;
    case StrategyKind::kGrid:
      s = GridSystem(d.a, d.b);
      break;
    case StrategyKind::kTree:
      s = TreeQuorumSystem(d.a, d.b);
      break;
    case StrategyKind::kHierarchical:
      s = HierarchicalMajoritySystem(d.a, d.b);
      break;
    case StrategyKind::kWeighted:
      s = WeightedVotingSystem(d.votes, d.read_threshold, d.write_threshold);
      break;
    case StrategyKind::kPrimaryCopy:
      s = PrimaryCopySystem(n);
      break;
    case StrategyKind::kOpaque:
      // Unreachable: ValidateDescriptor rejects kOpaque above.
      throw StrategyConfigError("opaque descriptor cannot build a system");
  }
  s.descriptor = d;
  return s;
}

QuorumSystem OverMembers(QuorumSystem base,
                         const std::vector<ReplicaId>& members) {
  if (members.size() != base.n) {
    throw StrategyConfigError(
        "over-members: strategy '" + ToString(base.descriptor) + "' spans " +
        std::to_string(base.n) + " structural positions, got " +
        std::to_string(members.size()) + " members");
  }
  std::uint64_t member_mask = 0;
  ReplicaId max_id = 0;
  for (ReplicaId m : members) {
    if (m >= 64) {
      throw StrategyConfigError(
          "over-members: member id " + std::to_string(m) +
          " beyond the 64-id bitmask domain");
    }
    if (member_mask & (1ull << m)) {
      throw StrategyConfigError("over-members: duplicate member id " +
                                std::to_string(m));
    }
    member_mask |= 1ull << m;
    max_id = std::max(max_id, m);
  }

  // Real up-mask → positional up-mask (bit i set iff members[i] is up).
  auto compress = [members](std::uint64_t up) {
    std::uint64_t pos = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (up & (1ull << members[i])) pos |= 1ull << i;
    }
    return pos;
  };
  // Positional quorum → real ids.
  auto expand = [members](Quorum q) {
    for (ReplicaId& r : q) r = members[static_cast<std::size_t>(r)];
    Normalize(q);
    return q;
  };

  QuorumSystem s;
  s.name = base.name + "-over(" + std::to_string(members.size()) + ")";
  s.n = static_cast<ReplicaId>(max_id + 1);
  s.descriptor = base.descriptor;
  s.has_read = [compress, f = base.has_read](std::uint64_t up) {
    return f(compress(up));
  };
  s.has_write = [compress, f = base.has_write](std::uint64_t up) {
    return f(compress(up));
  };
  s.pick_read = [compress, expand,
                 f = base.pick_read](std::uint64_t up)
      -> std::optional<Quorum> {
    auto q = f(compress(up));
    if (!q) return std::nullopt;
    return expand(std::move(*q));
  };
  s.pick_write = [compress, expand,
                  f = base.pick_write](std::uint64_t up)
      -> std::optional<Quorum> {
    auto q = f(compress(up));
    if (!q) return std::nullopt;
    return expand(std::move(*q));
  };
  return s;
}

}  // namespace qcnt::quorum
