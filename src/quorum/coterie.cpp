#include "quorum/coterie.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qcnt::quorum {

namespace {

std::uint64_t ToMask(const Quorum& q) {
  std::uint64_t mask = 0;
  for (ReplicaId r : q) {
    QCNT_CHECK(r < 64);
    mask |= 1ull << r;
  }
  return mask;
}

Quorum FromMask(std::uint64_t mask) {
  Quorum q;
  for (ReplicaId r = 0; r < 64 && mask; ++r) {
    if (mask & (1ull << r)) {
      q.push_back(r);
      mask &= ~(1ull << r);
    }
  }
  return q;
}

std::vector<std::uint64_t> ToMasks(const std::vector<Quorum>& quorums) {
  std::vector<std::uint64_t> masks;
  masks.reserve(quorums.size());
  for (const Quorum& q : quorums) masks.push_back(ToMask(q));
  return masks;
}

}  // namespace

bool IsCoterie(const std::vector<Quorum>& quorums, ReplicaId n) {
  if (quorums.empty()) return false;
  const std::uint64_t universe = n >= 64 ? ~0ull : ((1ull << n) - 1);
  const auto masks = ToMasks(quorums);
  for (std::size_t i = 0; i < masks.size(); ++i) {
    if (masks[i] == 0 || (masks[i] & ~universe) != 0) return false;
    for (std::size_t j = 0; j < masks.size(); ++j) {
      if (i == j) continue;
      if ((masks[i] & masks[j]) == 0) return false;      // intersection
      if ((masks[i] & masks[j]) == masks[i]) return false;  // antichain
    }
  }
  return true;
}

bool Dominates(const std::vector<Quorum>& c, const std::vector<Quorum>& d) {
  const auto cm = ToMasks(c);
  auto dm = ToMasks(d);
  auto cm_sorted = cm;
  std::sort(cm_sorted.begin(), cm_sorted.end());
  std::sort(dm.begin(), dm.end());
  if (cm_sorted == dm) return false;  // C must differ from D
  for (std::uint64_t q : dm) {
    bool covered = false;
    for (std::uint64_t p : cm) {
      if ((p & q) == p) {  // p ⊆ q
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::optional<Quorum> DominationWitness(const std::vector<Quorum>& c,
                                        ReplicaId n) {
  QCNT_CHECK(n >= 1 && n <= 20);
  const auto masks = ToMasks(c);
  const std::uint64_t limit = 1ull << n;
  for (std::uint64_t h = 1; h < limit; ++h) {
    bool intersects_all = true;
    bool contains_some = false;
    for (std::uint64_t q : masks) {
      if ((h & q) == 0) {
        intersects_all = false;
        break;
      }
      if ((q & h) == q) {  // q ⊆ h
        contains_some = true;
        break;
      }
    }
    if (intersects_all && !contains_some) return FromMask(h);
  }
  return std::nullopt;
}

bool IsDominated(const std::vector<Quorum>& c, ReplicaId n) {
  return DominationWitness(c, n).has_value();
}

std::vector<Quorum> MinimalTransversals(const std::vector<Quorum>& quorums,
                                        ReplicaId n) {
  QCNT_CHECK(n >= 1 && n <= 16);
  const auto masks = ToMasks(quorums);
  std::vector<std::uint64_t> hits;
  const std::uint64_t limit = 1ull << n;
  for (std::uint64_t t = 1; t < limit; ++t) {
    bool hits_all = true;
    for (std::uint64_t q : masks) {
      if ((t & q) == 0) {
        hits_all = false;
        break;
      }
    }
    if (hits_all) hits.push_back(t);
  }
  // Keep the minimal ones.
  std::vector<Quorum> minimal;
  for (std::uint64_t t : hits) {
    bool is_minimal = true;
    for (std::uint64_t other : hits) {
      if (other != t && (other & t) == other) {  // other ⊂ t
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(FromMask(t));
  }
  return minimal;
}

bool IsVoteAssignable(const std::vector<Quorum>& quorums, ReplicaId n,
                      std::uint32_t max_votes) {
  QCNT_CHECK(n >= 1);
  // Exhaustive vote search is (max_votes+1)^n; keep it honest.
  double combos = 1.0;
  for (ReplicaId i = 0; i < n; ++i) combos *= (max_votes + 1);
  QCNT_CHECK_MSG(combos <= 4e6, "universe too large for exhaustive search");

  auto target = ToMasks(quorums);
  std::sort(target.begin(), target.end());

  std::vector<std::uint32_t> votes(n, 0);
  const std::uint64_t limit = 1ull << n;
  for (;;) {
    std::uint32_t total = 0;
    for (std::uint32_t v : votes) total += v;
    for (std::uint32_t threshold = 1; threshold <= total; ++threshold) {
      // Minimal subsets whose votes reach the threshold.
      std::vector<std::uint64_t> minimal;
      for (std::uint64_t s = 1; s < limit; ++s) {
        std::uint32_t sum = 0;
        for (ReplicaId i = 0; i < n; ++i) {
          if (s & (1ull << i)) sum += votes[i];
        }
        if (sum < threshold) continue;
        bool is_minimal = true;
        for (ReplicaId i = 0; i < n && is_minimal; ++i) {
          if (!(s & (1ull << i))) continue;
          if (sum - votes[i] >= threshold) is_minimal = false;
        }
        if (is_minimal) minimal.push_back(s);
      }
      std::sort(minimal.begin(), minimal.end());
      if (minimal == target) return true;
    }
    // Next vote vector (odometer).
    ReplicaId i = 0;
    while (i < n && votes[i] == max_votes) votes[i++] = 0;
    if (i == n) break;
    ++votes[i];
  }
  return false;
}

}  // namespace qcnt::quorum
