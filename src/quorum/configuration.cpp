#include "quorum/configuration.hpp"

#include <algorithm>

namespace qcnt::quorum {

void Normalize(Quorum& q) {
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());
}

bool Intersects(const Quorum& a, const Quorum& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool IsSubset(const Quorum& a, const Quorum& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

Configuration::Configuration(std::vector<Quorum> read_quorums,
                             std::vector<Quorum> write_quorums)
    : read_quorums_(std::move(read_quorums)),
      write_quorums_(std::move(write_quorums)) {
  for (auto& q : read_quorums_) Normalize(q);
  for (auto& q : write_quorums_) Normalize(q);
}

bool Configuration::HasIntersectionProperty() const {
  for (const Quorum& r : read_quorums_) {
    for (const Quorum& w : write_quorums_) {
      if (!Intersects(r, w)) return false;
    }
  }
  return true;
}

bool Configuration::IsLegal() const {
  return !read_quorums_.empty() && !write_quorums_.empty() &&
         HasIntersectionProperty();
}

ReplicaId Configuration::UniverseSize() const {
  ReplicaId max_plus_one = 0;
  auto scan = [&max_plus_one](const std::vector<Quorum>& quorums) {
    for (const Quorum& q : quorums) {
      if (!q.empty()) max_plus_one = std::max(max_plus_one, q.back() + 1);
    }
  };
  scan(read_quorums_);
  scan(write_quorums_);
  return max_plus_one;
}

namespace {
std::vector<Quorum> DropSupersets(const std::vector<Quorum>& quorums) {
  std::vector<Quorum> kept;
  for (std::size_t i = 0; i < quorums.size(); ++i) {
    bool minimal = true;
    for (std::size_t j = 0; j < quorums.size() && minimal; ++j) {
      if (i == j) continue;
      // quorums[j] ⊂ quorums[i], or an equal earlier duplicate.
      if (IsSubset(quorums[j], quorums[i]) &&
          (quorums[j] != quorums[i] || j < i)) {
        minimal = false;
      }
    }
    if (minimal) kept.push_back(quorums[i]);
  }
  return kept;
}
}  // namespace

Configuration Configuration::Minimized() const {
  return Configuration(DropSupersets(read_quorums_),
                       DropSupersets(write_quorums_));
}

QuorumSetPayload Configuration::ToPayload() const {
  QuorumSetPayload p;
  p.read_quorums.assign(read_quorums_.begin(), read_quorums_.end());
  p.write_quorums.assign(write_quorums_.begin(), write_quorums_.end());
  return p;
}

Configuration Configuration::FromPayload(const QuorumSetPayload& p) {
  return Configuration(
      std::vector<Quorum>(p.read_quorums.begin(), p.read_quorums.end()),
      std::vector<Quorum>(p.write_quorums.begin(), p.write_quorums.end()));
}

}  // namespace qcnt::quorum
