#include "quorum/strategy_descriptor.hpp"

#include <cstdlib>
#include <numeric>
#include <sstream>

namespace qcnt::quorum {

namespace {

[[noreturn]] void Bad(const std::string& what) {
  throw StrategyConfigError(what);
}

/// Parse a full base-10 u32 out of `s`; throws naming `what` otherwise.
std::uint32_t ParseU32(const std::string& s, const char* what) {
  if (s.empty() || s[0] == '-' || s[0] == '+') {
    Bad(std::string("strategy spec: ") + what + " is not a number: '" + s +
        "'");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE || v > 0xffffffffull) {
    Bad(std::string("strategy spec: ") + what + " is not a number: '" + s +
        "'");
  }
  return static_cast<std::uint32_t>(v);
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

std::uint64_t TotalVotes(const StrategyDescriptor& d) {
  return std::accumulate(d.votes.begin(), d.votes.end(), std::uint64_t{0});
}

}  // namespace

const char* ToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kOpaque:
      return "opaque";
    case StrategyKind::kMajority:
      return "majority";
    case StrategyKind::kReadOneWriteAll:
      return "rowa";
    case StrategyKind::kReadAllWriteOne:
      return "rawo";
    case StrategyKind::kGrid:
      return "grid";
    case StrategyKind::kTree:
      return "tree";
    case StrategyKind::kHierarchical:
      return "hier";
    case StrategyKind::kWeighted:
      return "weighted";
    case StrategyKind::kPrimaryCopy:
      return "primary";
  }
  return "unknown";
}

std::string ToString(const StrategyDescriptor& d) {
  std::ostringstream out;
  out << ToString(d.kind);
  switch (d.kind) {
    case StrategyKind::kGrid:
      out << ":" << d.a << "x" << d.b;
      break;
    case StrategyKind::kTree:
    case StrategyKind::kHierarchical:
      out << ":" << d.a << "," << d.b;
      break;
    case StrategyKind::kWeighted: {
      out << ":";
      for (std::size_t i = 0; i < d.votes.size(); ++i) {
        if (i != 0) out << ",";
        out << d.votes[i];
      }
      out << ":" << d.read_threshold << ":" << d.write_threshold;
      break;
    }
    default:
      break;
  }
  return out.str();
}

StrategyDescriptor ParseStrategy(const std::string& spec) {
  StrategyDescriptor d;
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);

  if (head == "majority") {
    d.kind = StrategyKind::kMajority;
  } else if (head == "rowa" || head == "read-one-write-all" ||
             head == "read-dominant") {
    d.kind = StrategyKind::kReadOneWriteAll;
  } else if (head == "rawo" || head == "read-all-write-one") {
    d.kind = StrategyKind::kReadAllWriteOne;
  } else if (head == "primary") {
    d.kind = StrategyKind::kPrimaryCopy;
  } else if (head == "grid") {
    d.kind = StrategyKind::kGrid;
    const auto dims = SplitOn(rest, 'x');
    if (dims.size() != 2) Bad("strategy spec: grid wants 'grid:RxC'");
    d.a = ParseU32(dims[0], "grid rows");
    d.b = ParseU32(dims[1], "grid cols");
  } else if (head == "tree" || head == "hier") {
    d.kind = head == "tree" ? StrategyKind::kTree
                            : StrategyKind::kHierarchical;
    const auto dims = SplitOn(rest, ',');
    if (dims.size() != 2) {
      Bad("strategy spec: " + head + " wants '" + head +
          ":branching," + (head == "tree" ? "levels'" : "depth'"));
    }
    d.a = ParseU32(dims[0], "branching");
    d.b = ParseU32(dims[1], head == "tree" ? "levels" : "depth");
  } else if (head == "weighted") {
    d.kind = StrategyKind::kWeighted;
    const auto parts = SplitOn(rest, ':');
    if (parts.size() != 3) {
      Bad("strategy spec: weighted wants 'weighted:v1,v2,...:R:W'");
    }
    for (const std::string& v : SplitOn(parts[0], ',')) {
      d.votes.push_back(ParseU32(v, "vote"));
    }
    d.read_threshold = ParseU32(parts[1], "read threshold");
    d.write_threshold = ParseU32(parts[2], "write threshold");
  } else {
    Bad("unknown strategy '" + spec +
        "' (want majority, rowa, rawo, primary, grid:RxC, tree:B,L, "
        "hier:B,D or weighted:v1,...:R:W)");
  }
  // Shape-only checks here; the fit against a concrete member count is
  // ValidateDescriptor's job (the caller knows its n, the spec does not).
  if (d.kind != StrategyKind::kWeighted && colon != std::string::npos &&
      d.kind != StrategyKind::kGrid && d.kind != StrategyKind::kTree &&
      d.kind != StrategyKind::kHierarchical) {
    Bad("strategy '" + head + "' takes no parameters");
  }
  return d;
}

ReplicaId RequiredUniverse(const StrategyDescriptor& d) {
  switch (d.kind) {
    case StrategyKind::kGrid:
      return d.a * d.b;
    case StrategyKind::kHierarchical: {
      std::uint64_t n = 1;
      for (std::uint32_t i = 0; i < d.b; ++i) {
        n *= d.a;
        if (n > 64) return 65;  // ValidateDescriptor rejects with a message
      }
      return static_cast<ReplicaId>(n);
    }
    case StrategyKind::kTree: {
      std::uint64_t n = 0, width = 1;
      for (std::uint32_t l = 0; l < d.b; ++l) {
        n += width;
        width *= d.a;
        if (n > 64) return 65;
      }
      return static_cast<ReplicaId>(n);
    }
    case StrategyKind::kWeighted:
      return static_cast<ReplicaId>(d.votes.size());
    default:
      return 0;  // resizes to any n
  }
}

void ValidateDescriptor(const StrategyDescriptor& d, ReplicaId n) {
  if (n < 1 || n > 64) {
    Bad("strategy '" + ToString(d) + "': member count " + std::to_string(n) +
        " outside the 64-id quorum bitmask domain");
  }
  if (d.kind == StrategyKind::kOpaque) {
    Bad("opaque quorum system has no parametric description to derive "
        "from (hand-built configurations cannot resize or cross the "
        "wire)");
  }
  const ReplicaId required = RequiredUniverse(d);
  if (required != 0 && required != n) {
    Bad("strategy '" + ToString(d) + "' covers exactly " +
        std::to_string(required) + " members and cannot serve " +
        std::to_string(n));
  }
  switch (d.kind) {
    case StrategyKind::kGrid:
      if (d.a < 1 || d.b < 1) Bad("grid: rows and cols must be >= 1");
      break;
    case StrategyKind::kTree:
    case StrategyKind::kHierarchical:
      if (d.a < 3 || d.a % 2 == 0) {
        Bad(std::string(ToString(d.kind)) +
            ": branching must be odd and >= 3");
      }
      if (d.b < 1) {
        Bad(std::string(ToString(d.kind)) + ": " +
            (d.kind == StrategyKind::kTree ? "levels" : "depth") +
            " must be >= 1");
      }
      break;
    case StrategyKind::kWeighted: {
      if (d.votes.empty()) Bad("weighted: vote vector is empty");
      const std::uint64_t total = TotalVotes(d);
      if (total == 0) Bad("weighted: total votes must be positive");
      if (d.read_threshold < 1 || d.write_threshold < 1) {
        Bad("weighted: thresholds must be >= 1");
      }
      if (d.read_threshold > total || d.write_threshold > total) {
        Bad("weighted: a threshold exceeds the total votes — no quorum "
            "could ever assemble");
      }
      if (d.read_threshold + std::uint64_t{d.write_threshold} <= total) {
        Bad("weighted: Gifford constraint violated — read + write "
            "thresholds must exceed the total votes");
      }
      if (2 * std::uint64_t{d.write_threshold} <= total) {
        Bad("weighted: write-write intersection violated — twice the "
            "write threshold must exceed the total votes");
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace qcnt::quorum
