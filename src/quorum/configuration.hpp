// Configurations: sets of read-quorums and write-quorums (Section 2.3).
//
// Following Barbara & Garcia-Molina's generalization adopted by the paper, a
// configuration is a pair (r, w) of sets of quorums, where each quorum is a
// set of DM names; the configuration is *legal* iff every read-quorum has a
// non-empty intersection with every write-quorum. Gifford's vote-based
// scheme is the special case produced by strategies::WeightedVoting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/value.hpp"

namespace qcnt::quorum {

/// A quorum: a set of replica (DM) names, kept sorted and duplicate-free.
using Quorum = std::vector<ReplicaId>;

/// Sort + dedupe in place, establishing the Quorum representation invariant.
void Normalize(Quorum& q);

/// Do two normalized quorums share a member?
bool Intersects(const Quorum& a, const Quorum& b);

/// Is a ⊆ b for normalized quorums?
bool IsSubset(const Quorum& a, const Quorum& b);

/// A configuration of a logical item: read-quorums and write-quorums.
class Configuration {
 public:
  Configuration() = default;
  Configuration(std::vector<Quorum> read_quorums,
                std::vector<Quorum> write_quorums);

  const std::vector<Quorum>& ReadQuorums() const { return read_quorums_; }
  const std::vector<Quorum>& WriteQuorums() const { return write_quorums_; }

  /// Every read-quorum intersects every write-quorum, and both sets are
  /// non-empty (an empty quorum *set* would make the corresponding logical
  /// operation impossible; note an empty read set with a non-empty write
  /// set is vacuously "legal" per the definition, so we expose both tests).
  bool IsLegal() const;

  /// The paper's legal(S) predicate alone: pairwise intersection, with no
  /// non-emptiness requirement.
  bool HasIntersectionProperty() const;

  /// Largest replica id mentioned plus one (0 when empty).
  ReplicaId UniverseSize() const;

  /// Drop non-minimal quorums (supersets of another quorum of the same
  /// kind). Preserves legality and availability.
  Configuration Minimized() const;

  /// Serialize for transport inside Values (Section 4 reconfiguration).
  QuorumSetPayload ToPayload() const;
  static Configuration FromPayload(const QuorumSetPayload& p);

  std::string ToString() const { return qcnt::ToString(ToPayload()); }

  friend bool operator==(const Configuration&,
                         const Configuration&) = default;

 private:
  std::vector<Quorum> read_quorums_;
  std::vector<Quorum> write_quorums_;
};

}  // namespace qcnt::quorum
