#include "quorum/availability.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace qcnt::quorum {

Availability ExactAvailability(const QuorumSystem& s, double up_prob) {
  QCNT_CHECK(s.n >= 1 && s.n <= 24);
  QCNT_CHECK(up_prob >= 0.0 && up_prob <= 1.0);
  Availability out;
  const std::uint64_t limit = 1ull << s.n;
  for (std::uint64_t up = 0; up < limit; ++up) {
    const int k = std::popcount(up);
    const double weight = std::pow(up_prob, k) *
                          std::pow(1.0 - up_prob, static_cast<int>(s.n) - k);
    if (weight == 0.0) continue;
    if (s.has_read(up)) out.read += weight;
    if (s.has_write(up)) out.write += weight;
  }
  return out;
}

namespace {
std::uint64_t SampleUpSet(ReplicaId n, double up_prob, Rng& rng) {
  std::uint64_t up = 0;
  for (ReplicaId i = 0; i < n; ++i) {
    if (rng.Chance(up_prob)) up |= 1ull << i;
  }
  return up;
}
}  // namespace

Availability MonteCarloAvailability(const QuorumSystem& s, double up_prob,
                                    std::size_t trials, Rng& rng) {
  QCNT_CHECK(trials > 0);
  std::size_t reads = 0, writes = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t up = SampleUpSet(s.n, up_prob, rng);
    if (s.has_read(up)) ++reads;
    if (s.has_write(up)) ++writes;
  }
  return {static_cast<double>(reads) / static_cast<double>(trials),
          static_cast<double>(writes) / static_cast<double>(trials)};
}

OperationCost FullyUpCost(const QuorumSystem& s) {
  const std::uint64_t full =
      s.n == 64 ? ~0ull : ((1ull << s.n) - 1);
  const auto r = s.pick_read(full);
  const auto w = s.pick_write(full);
  QCNT_CHECK(r.has_value() && w.has_value());
  OperationCost cost;
  cost.read_messages = static_cast<double>(r->size());
  // A logical write performs a read-quorum phase (version discovery) and a
  // write-quorum phase.
  cost.write_messages = static_cast<double>(r->size() + w->size());
  return cost;
}

OperationCost ExpectedCost(const QuorumSystem& s, double up_prob,
                           std::size_t trials, Rng& rng) {
  QCNT_CHECK(trials > 0);
  double read_sum = 0.0, write_sum = 0.0;
  std::size_t read_ok = 0, write_ok = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t up = SampleUpSet(s.n, up_prob, rng);
    if (const auto r = s.pick_read(up)) {
      read_sum += static_cast<double>(r->size());
      ++read_ok;
      if (const auto w = s.pick_write(up)) {
        write_sum += static_cast<double>(r->size() + w->size());
        ++write_ok;
      }
    }
  }
  OperationCost cost;
  if (read_ok > 0) cost.read_messages = read_sum / static_cast<double>(read_ok);
  if (write_ok > 0) {
    cost.write_messages = write_sum / static_cast<double>(write_ok);
  }
  return cost;
}

}  // namespace qcnt::quorum
