// Coterie theory (Garcia-Molina & Barbara) for quorum configurations.
//
// A *coterie* over a universe U is an antichain of pairwise-intersecting
// subsets of U — exactly the structure a set of write-quorums must form
// (every write-quorum intersects every write-quorum, per Gifford's
// 2·write-quorum > total-votes constraint), and the structure read/write
// quorum pairs generalize. This module provides:
//
//   * the coterie predicate (intersection + minimality);
//   * domination: coterie C dominates D when C ≠ D and every quorum of D
//     contains some quorum of C — a dominated coterie is strictly worse in
//     both availability and cost, so production configurations should be
//     non-dominated (ND);
//   * an exact ND test (via the Garcia-Molina–Barbara characterization:
//     C is dominated iff some H ⊆ U intersects every quorum of C yet
//     contains none);
//   * minimal transversals (the sets that must be contacted to *block*
//     every quorum — the duality behind read-quorum requirements);
//   * a brute-force vote-assignability check for small universes (is C the
//     quorum set of some weighted-voting assignment?).
//
// Everything here is exact and exponential in |U|; intended for the small
// universes of real configurations (|U| ≤ ~16).
#pragma once

#include <cstdint>
#include <optional>

#include "quorum/configuration.hpp"

namespace qcnt::quorum {

/// Is `quorums` a coterie over {0..n-1}: non-empty, every pair intersects,
/// and no quorum contains another?
bool IsCoterie(const std::vector<Quorum>& quorums, ReplicaId n);

/// Does C dominate D (C ≠ D and every quorum of D is a superset of some
/// quorum of C)? Both are assumed to be coteries over the same universe.
bool Dominates(const std::vector<Quorum>& c, const std::vector<Quorum>& d);

/// Exact non-domination test over universe {0..n-1}. Requires n ≤ 20.
bool IsDominated(const std::vector<Quorum>& c, ReplicaId n);

/// If c is dominated, return a witness quorum H that intersects every
/// quorum of c but contains none (adding H yields a dominating coterie).
std::optional<Quorum> DominationWitness(const std::vector<Quorum>& c,
                                        ReplicaId n);

/// All minimal transversals of `quorums` over {0..n-1}: minimal sets
/// intersecting every quorum. Requires n ≤ 16.
std::vector<Quorum> MinimalTransversals(const std::vector<Quorum>& quorums,
                                        ReplicaId n);

/// Is `quorums` exactly the set of minimal quorums induced by some vote
/// assignment with per-replica votes in [0, max_votes] and some threshold?
/// Exhaustive search; requires n ≤ 5 with the default vote bound.
bool IsVoteAssignable(const std::vector<Quorum>& quorums, ReplicaId n,
                      std::uint32_t max_votes = 4);

}  // namespace qcnt::quorum
