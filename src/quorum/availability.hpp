// Availability and cost analysis of quorum systems.
//
// The paper's introduction motivates replication by availability and
// performance; these analyses quantify those claims for the strategies in
// strategies.hpp (experiments E4/E5/E11 in DESIGN.md).
//
// A replica is "up" independently with probability up_prob. Read (write)
// availability is the probability that the set of up replicas contains some
// read (write) quorum. Exact analysis enumerates all 2^n up-sets (n ≤ 24);
// Monte-Carlo handles larger universes.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "quorum/strategies.hpp"

namespace qcnt::quorum {

struct Availability {
  double read = 0.0;
  double write = 0.0;
};

/// Exact availability by enumeration over up-sets. Requires s.n ≤ 24.
Availability ExactAvailability(const QuorumSystem& s, double up_prob);

/// Monte-Carlo availability estimate over the given number of trials.
Availability MonteCarloAvailability(const QuorumSystem& s, double up_prob,
                                    std::size_t trials, Rng& rng);

struct OperationCost {
  /// Mean number of replicas contacted by a logical read (one read quorum).
  double read_messages = 0.0;
  /// Mean number contacted by a logical write (read quorum + write quorum,
  /// counting a replica once per phase as the protocol does).
  double write_messages = 0.0;
};

/// Expected per-operation message counts when all replicas are up, using
/// the strategy's preferred quorum selection.
OperationCost FullyUpCost(const QuorumSystem& s);

/// Expected message counts conditioned on the operation being possible,
/// with each replica up independently with up_prob (Monte Carlo).
OperationCost ExpectedCost(const QuorumSystem& s, double up_prob,
                           std::size_t trials, Rng& rng);

}  // namespace qcnt::quorum
