// Quorum configuration strategies.
//
// The paper's configuration is abstract; these factories build the concrete
// families used in practice and in our experiments:
//
//   * ReadOneWriteAll / ReadAllWriteOne — the two degenerate extremes the
//     paper says Gifford's scheme generalizes.
//   * Majority — read-majority/write-majority.
//   * WeightedVoting — Gifford's original vote-threshold scheme
//     (read-quorum + write-quorum > total votes).
//   * Grid — rectangular grid protocol: a read quorum covers one replica
//     per column; a write quorum is a full column plus a column cover.
//   * HierarchicalMajority — Kumar-style recursive majority over a b-ary
//     tree of the replicas (b odd), giving o(n)-sized quorums.
//   * PrimaryCopy — all operations at a single distinguished replica.
//
// Each strategy is exposed two ways:
//   1. an explicit Configuration (the paper's object; practical for the
//      automaton systems, which use a handful of replicas), and
//   2. a QuorumSystem of predicates over up-sets (bitmask of live replicas),
//      usable for any n ≤ 64 in availability analysis and the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "quorum/configuration.hpp"
#include "quorum/strategy_descriptor.hpp"

namespace qcnt::quorum {

/// Predicate/selector view of a quorum strategy for a universe of n
/// replicas. `up` bitmasks have bit i set iff replica i is reachable.
struct QuorumSystem {
  std::string name;
  ReplicaId n = 0;
  /// Does `up` contain some read (resp. write) quorum?
  std::function<bool(std::uint64_t up)> has_read;
  std::function<bool(std::uint64_t up)> has_write;
  /// Select a cheap read (resp. write) quorum within `up`, if one exists.
  std::function<std::optional<Quorum>(std::uint64_t up)> pick_read;
  std::function<std::optional<Quorum>(std::uint64_t up)> pick_write;
  /// The value-type identity of this system (kOpaque for hand-built
  /// systems): what the runtime serializes, compares, and re-derives
  /// over changed member sets. Every factory below stamps it.
  StrategyDescriptor descriptor;
};

// --- Explicit configurations (enumerated; intended for small n) ----------

Configuration ReadOneWriteAll(ReplicaId n);
Configuration ReadAllWriteOne(ReplicaId n);
/// All ⌈(n+1)/2⌉-subsets as both read and write quorums. Requires n ≤ 16.
Configuration Majority(ReplicaId n);
/// Gifford: replica i carries votes[i] votes; a read (write) quorum is a
/// minimal set whose votes sum to ≥ read_threshold (write_threshold).
/// Requires read_threshold + write_threshold > total votes and ≤ 16 replicas.
Configuration WeightedVoting(const std::vector<std::uint32_t>& votes,
                             std::uint32_t read_threshold,
                             std::uint32_t write_threshold);
/// Grid of rows × cols replicas (id = r*cols + c). Requires rows,cols ≥ 1
/// and rows ≤ 5, cols ≤ 5 for enumeration.
Configuration Grid(ReplicaId rows, ReplicaId cols);
Configuration PrimaryCopy(ReplicaId n);

// --- Predicate systems (any n ≤ 64) ---------------------------------------

QuorumSystem ReadOneWriteAllSystem(ReplicaId n);
QuorumSystem ReadAllWriteOneSystem(ReplicaId n);
QuorumSystem MajoritySystem(ReplicaId n);
/// Majority quorums over an *arbitrary* member set within a ≤64-id
/// universe: `up` bitmasks are masked down to the members before the
/// popcount threshold. The runtime's membership change uses this — node
/// ids stay fixed for life, so a grown or shrunk replica set is a
/// non-contiguous id list, not a prefix [0, n). Member ids must be
/// distinct and < 64.
QuorumSystem MajorityOverSystem(const std::vector<ReplicaId>& members);
QuorumSystem WeightedVotingSystem(std::vector<std::uint32_t> votes,
                                  std::uint32_t read_threshold,
                                  std::uint32_t write_threshold);
QuorumSystem GridSystem(ReplicaId rows, ReplicaId cols);
/// n must be branching^depth with odd branching ≥ 3.
QuorumSystem HierarchicalMajoritySystem(ReplicaId branching,
                                        ReplicaId depth);
/// Agrawal–El Abbadi tree quorum protocol over a complete tree whose
/// *every node* is a replica (n = (b^(levels) − 1)/(b − 1), b odd ≥ 3):
/// a read quorum for a subtree is its root alone, or recursively read
/// quorums of a majority of its children (graceful degradation: reads cost
/// 1 when the root is up); a write quorum is the root *plus* write quorums
/// of a majority of its children at every level. Node 0 is the root; the
/// children of node v are v*b+1 .. v*b+b.
QuorumSystem TreeQuorumSystem(ReplicaId branching, ReplicaId levels);
QuorumSystem PrimaryCopySystem(ReplicaId n);

/// Wrap an explicit Configuration as a predicate system.
QuorumSystem FromConfiguration(std::string name, const Configuration& c);

/// Build the system a descriptor names, over the contiguous structural
/// universe [0, n). Validates first (ValidateDescriptor) and throws
/// StrategyConfigError — never a QCNT_CHECK abort — on bad parameters or
/// a shape that cannot cover n. The returned system carries `d` as its
/// descriptor.
QuorumSystem SystemFromDescriptor(const StrategyDescriptor& d, ReplicaId n);

/// Re-home a structural system onto an arbitrary member set: structural
/// position i plays the role of real replica id members[i]. Predicates
/// compress a real-id up-mask down to positional form first; picked
/// quorums are mapped back to real ids. members.size() must equal
/// base.n, ids must be distinct and < 64 (throws StrategyConfigError).
/// The wrapped system keeps base's descriptor — membership change uses
/// this to re-derive a serving strategy over a grown or shrunk id list
/// (node ids are burned forever, so member sets go non-contiguous).
QuorumSystem OverMembers(QuorumSystem base,
                         const std::vector<ReplicaId>& members);

}  // namespace qcnt::quorum
