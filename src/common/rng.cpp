#include "common/rng.hpp"

#include <cmath>

namespace qcnt {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed; xoshiro must not be seeded with all zeros, which
  // SplitMix64 expansion prevents for any input.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  QCNT_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::Range(std::int64_t lo, std::int64_t hi) {
  QCNT_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(Below(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  QCNT_CHECK(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::Index(std::size_t size) {
  QCNT_CHECK(size > 0);
  return static_cast<std::size_t>(Below(size));
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace qcnt
