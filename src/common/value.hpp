// The value domain V carried by transaction return operations.
//
// The paper leaves V abstract, requiring only that nil ∈ V. Our Value is a
// closed variant rich enough for every automaton in the library:
//
//   * Nil           — the paper's distinguished undefined value (write
//                     accesses and write-TMs request-commit with nil).
//   * int64/string  — logical item domains used by examples and workloads.
//   * Versioned     — a (version-number, value) pair, the domain of the DMs
//                     in Section 3 (D_x = N × V_x).
//   * ConfigStamp   — a (configuration, generation-number) pair, held by the
//                     reconfigurable DMs of Section 4.
//   * ReplicaSnapshot — the full reconfigurable-DM state returned by read
//                     accesses in Section 4 (value, version, config, gen).
//
// Values are plain data with value semantics and defaulted comparisons so
// that schedule equality (Theorem 10's "looks the same" condition) is exact.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace qcnt {

/// A value of a logical data item itself (an element of V_x).
using Plain = std::variant<std::monostate, std::int64_t, std::string>;

/// True when p holds the distinguished nil value.
inline bool IsNil(const Plain& p) {
  return std::holds_alternative<std::monostate>(p);
}

/// A (version-number, value) pair — the state domain of a Section-3 DM.
struct Versioned {
  std::uint64_t version = 0;
  Plain value = std::monostate{};

  friend bool operator==(const Versioned&, const Versioned&) = default;
};

/// A configuration serialized for transport inside values: the members of
/// each quorum are replica ids local to one logical item. Legality (every
/// read quorum intersects every write quorum) is enforced by the quorum
/// library that produces these payloads.
struct QuorumSetPayload {
  std::vector<std::vector<std::uint32_t>> read_quorums;
  std::vector<std::vector<std::uint32_t>> write_quorums;

  friend bool operator==(const QuorumSetPayload&,
                         const QuorumSetPayload&) = default;
};

/// A (configuration, generation-number) pair — Section 4's per-replica
/// configuration state.
struct ConfigStamp {
  QuorumSetPayload config;
  std::uint64_t generation = 0;

  friend bool operator==(const ConfigStamp&, const ConfigStamp&) = default;
};

/// Full state of a reconfigurable DM as returned by a Section-4 read access.
struct ReplicaSnapshot {
  Versioned data;
  ConfigStamp stamp;

  friend bool operator==(const ReplicaSnapshot&,
                         const ReplicaSnapshot&) = default;
};

/// The transported value domain V (closed over every subsystem's needs).
using Value = std::variant<std::monostate, std::int64_t, std::string,
                           Versioned, ConfigStamp, ReplicaSnapshot>;

inline const Value kNil = Value{std::monostate{}};

/// True when v is the distinguished nil value.
inline bool IsNil(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// Lift a Plain logical value into the transport domain.
Value FromPlain(const Plain& p);

/// Extract a Plain logical value; requires v to hold nil/int/string.
Plain ToPlain(const Value& v);

/// Human-readable rendering (for traces, failures, and examples).
std::string ToString(const Plain& p);
std::string ToString(const Versioned& v);
std::string ToString(const QuorumSetPayload& q);
std::string ToString(const ConfigStamp& c);
std::string ToString(const Value& v);

}  // namespace qcnt
