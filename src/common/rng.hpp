// Deterministic pseudo-random number generation.
//
// All randomized exploration (nondeterministic automaton scheduling, fault
// injection, workload generation, Monte-Carlo availability estimation) flows
// through Rng so that every execution in tests and benches is reproducible
// from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace qcnt {

/// SplitMix64: used to expand a user seed into xoshiro256** state.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and high quality;
/// deliberately not std::mt19937 so that streams are stable across standard
/// library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t Below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t Index(std::size_t size);

  /// Fork an independent stream (for per-component determinism).
  Rng Fork();

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// UniformRandomBitGenerator interface (for std::sample etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return Next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace qcnt
