#include "common/value.hpp"

#include <sstream>

#include "common/check.hpp"

namespace qcnt {

Value FromPlain(const Plain& p) {
  return std::visit([](const auto& alt) -> Value { return Value{alt}; }, p);
}

Plain ToPlain(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return std::monostate{};
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  QCNT_CHECK_MSG(false, "value does not hold a plain alternative");
}

std::string ToString(const Plain& p) {
  if (std::holds_alternative<std::monostate>(p)) return "nil";
  if (const auto* i = std::get_if<std::int64_t>(&p)) return std::to_string(*i);
  return '"' + std::get<std::string>(p) + '"';
}

std::string ToString(const Versioned& v) {
  return "(vn=" + std::to_string(v.version) + "," + ToString(v.value) + ")";
}

std::string ToString(const QuorumSetPayload& q) {
  std::ostringstream os;
  auto render = [&os](const std::vector<std::vector<std::uint32_t>>& quorums) {
    os << '{';
    for (std::size_t i = 0; i < quorums.size(); ++i) {
      if (i) os << ',';
      os << '{';
      for (std::size_t j = 0; j < quorums[i].size(); ++j) {
        if (j) os << ',';
        os << quorums[i][j];
      }
      os << '}';
    }
    os << '}';
  };
  os << "(r=";
  render(q.read_quorums);
  os << ",w=";
  render(q.write_quorums);
  os << ')';
  return os.str();
}

std::string ToString(const ConfigStamp& c) {
  return "(gen=" + std::to_string(c.generation) + "," + ToString(c.config) +
         ")";
}

std::string ToString(const Value& v) {
  return std::visit(
      [](const auto& alt) -> std::string {
        using T = std::decay_t<decltype(alt)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return "nil";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(alt);
        } else if constexpr (std::is_same_v<T, std::string>) {
          return '"' + alt + '"';
        } else if constexpr (std::is_same_v<T, ReplicaSnapshot>) {
          return "(data=" + ToString(alt.data) +
                 ",stamp=" + ToString(alt.stamp) + ")";
        } else {
          return ToString(alt);
        }
      },
      v);
}

}  // namespace qcnt
