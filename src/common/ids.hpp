// Strong identifier types used throughout the library.
//
// Transaction names, object names, logical item names, and replica names in
// the paper are abstract set elements; we intern them as dense indices into
// the arenas of a SystemType (src/txn/system_type.hpp). Dense ids keep the
// automata state machines allocation-free on the hot path while preserving
// the paper's "the tree structure is known in advance" assumption.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace qcnt {

/// A transaction name: an index into SystemType's node arena. The root
/// transaction T0 is always id 0.
using TxnId = std::uint32_t;

/// A basic-object name: an index into SystemType's object arena. Each
/// object corresponds to one element of the partition O of accesses.
using ObjectId = std::uint32_t;

/// A logical data item name (an element of I in Section 3).
using ItemId = std::uint32_t;

/// A replica (data manager) name, local to one logical item: DM k of item x.
using ReplicaId = std::uint32_t;

inline constexpr TxnId kRootTxn = 0;
inline constexpr TxnId kNoTxn = std::numeric_limits<TxnId>::max();
inline constexpr ObjectId kNoObject = std::numeric_limits<ObjectId>::max();
inline constexpr ItemId kNoItem = std::numeric_limits<ItemId>::max();

}  // namespace qcnt
