// Checked environment-variable parsing.
//
// Several knobs are overridable from the environment so a CI matrix can
// vary them without editing tests (QCNT_SHARDS, QCNT_FAULT_SEED,
// QCNT_TCP_PORT_BASE). They all follow one contract, implemented once
// here: the variable must hold a complete base-10 unsigned integer within
// the caller's [lo, hi] range, or it is ignored and the built-in default
// applies. Ignoring (rather than aborting on) a malformed value is
// deliberate — an env var set for one binary must never take down another
// binary that happens to inherit the environment.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>

namespace qcnt::common {

/// Parse `name` as an unsigned integer in [lo, hi]. Returns nullopt when
/// the variable is unset, empty, malformed (sign, trailing junk, overflow),
/// or out of range.
inline std::optional<std::uint64_t> EnvU64(const char* name, std::uint64_t lo,
                                           std::uint64_t hi) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  // Reject signs and whitespace up front: strtoull would accept "-1" by
  // wrapping it to 2^64-1, which a range check against hi may then pass.
  if (*env == '-' || *env == '+' || *env == ' ') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE) return std::nullopt;
  if (v < lo || v > hi) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace qcnt::common
