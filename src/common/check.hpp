// Assertion macros for internal invariants.
//
// QCNT_CHECK is always on (tests and benches rely on it); QCNT_DCHECK
// compiles out in NDEBUG builds. Violations throw so that test harnesses
// can report the failing invariant instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qcnt {

/// Thrown when an internal invariant is violated.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace qcnt

#define QCNT_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::qcnt::detail::CheckFailed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define QCNT_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::qcnt::detail::CheckFailed(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

#ifdef NDEBUG
#define QCNT_DCHECK(expr) ((void)0)
#else
#define QCNT_DCHECK(expr) QCNT_CHECK(expr)
#endif
